#include "obs/metrics.h"

#include <algorithm>

#include "obs/trace.h"

namespace campion::obs {

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::Add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  values_[name] += delta;
}

void MetricsRegistry::Max(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = values_.emplace(name, value);
  if (!inserted) it->second = std::max(it->second, value);
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {values_.begin(), values_.end()};  // std::map is already name-sorted.
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.clear();
}

void Count(const std::string& name, double delta) {
  if (!Enabled()) return;
  MetricsRegistry::Instance().Add(name, delta);
}

void MaxGauge(const std::string& name, double value) {
  if (!Enabled()) return;
  MetricsRegistry::Instance().Max(name, value);
}

}  // namespace campion::obs
