#pragma once

// Fixed-bucket log-scale latency histograms for the daemon's telemetry
// layer (docs/trace_format.md documents the rendered vocabulary).
//
// Layout: log-linear over nanoseconds, HdrHistogram-style with two
// significant mantissa bits. Each power-of-two octave splits into
// kSubBuckets = 4 sub-buckets, so every bucket boundary is the exact
// integer (4 + sub) << (octave - 1) and the relative bucket width is at
// most 1/4 — a quantile read is within one bucket width (<= 25%) of the
// true rank value. The sub-bucket index is pure integer math on the top
// mantissa bits; no floating point, no logs, no table.
//
// Concurrency: Record() is wait-free — one array index computation plus
// three relaxed atomic adds, no allocation, no lock — so it can sit on
// the daemon's per-request completion path while any number of
// connection threads record concurrently. Reads take a Snapshot (plain
// struct); snapshots Merge() by element-wise addition, which is
// associative and commutative, so folding per-thread or per-request
// histograms in any order yields the same totals (the same invariant the
// metrics registry keeps for counters).

#include <array>
#include <atomic>
#include <cstdint>

namespace campion::obs {

// A point-in-time copy of a histogram: plain integers, safe to merge,
// serialize, and quantile-walk without touching the live atomics.
struct HistogramSnapshot {
  static constexpr int kSubBucketBits = 2;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;          // 4
  static constexpr int kBucketCount = 64 * kSubBuckets;            // 256

  std::array<std::uint64_t, kBucketCount> counts{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;

  // Element-wise addition: associative and commutative, so fold order
  // across threads or requests never changes the result.
  void Merge(const HistogramSnapshot& other);

  // The inclusive upper bound (in ns) of the bucket containing the
  // rank-`q` observation (q in [0, 1]); 0 when empty. Exact to within one
  // bucket width of the true quantile.
  std::uint64_t QuantileNs(double q) const;

  double MeanNs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
};

// The live, recordable histogram. Fixed footprint (one cache-friendly
// array of atomics), zero allocation on every path.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = HistogramSnapshot::kSubBucketBits;
  static constexpr int kSubBuckets = HistogramSnapshot::kSubBuckets;
  static constexpr int kBucketCount = HistogramSnapshot::kBucketCount;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Records one observation. Wait-free, allocation-free.
  void Record(std::uint64_t ns);

  HistogramSnapshot Snapshot() const;

  // The bucket holding `ns`. Buckets 0..3 hold the exact values 0..3;
  // beyond that, bucket (octave << 2 | sub) covers
  // [(4+sub) << (octave-1), (5+sub) << (octave-1)).
  static int BucketIndex(std::uint64_t ns);

  // Inclusive lower / exclusive upper bound of a bucket, in ns. The
  // topmost reachable bucket's upper bound saturates at UINT64_MAX.
  static std::uint64_t BucketLowerNs(int index);
  static std::uint64_t BucketUpperNs(int index);

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

}  // namespace campion::obs
