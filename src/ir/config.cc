#include "ir/config.h"

#include <algorithm>
#include <set>

namespace campion::ir {

std::string ToString(Vendor vendor) {
  switch (vendor) {
    case Vendor::kCisco: return "cisco";
    case Vendor::kJuniper: return "juniper";
    case Vendor::kUnknown: return "unknown";
  }
  return "unknown";
}

const PrefixList* RouterConfig::FindPrefixList(const std::string& name) const {
  auto it = prefix_lists.find(name);
  return it == prefix_lists.end() ? nullptr : &it->second;
}

const CommunityList* RouterConfig::FindCommunityList(
    const std::string& name) const {
  auto it = community_lists.find(name);
  return it == community_lists.end() ? nullptr : &it->second;
}

const AsPathList* RouterConfig::FindAsPathList(const std::string& name) const {
  auto it = as_path_lists.find(name);
  return it == as_path_lists.end() ? nullptr : &it->second;
}

const RouteMap* RouterConfig::FindRouteMap(const std::string& name) const {
  auto it = route_maps.find(name);
  return it == route_maps.end() ? nullptr : &it->second;
}

const Acl* RouterConfig::FindAcl(const std::string& name) const {
  auto it = acls.find(name);
  return it == acls.end() ? nullptr : &it->second;
}

const Interface* RouterConfig::FindInterface(const std::string& name) const {
  for (const auto& iface : interfaces) {
    if (iface.name == name) return &iface;
  }
  return nullptr;
}

const BgpNeighbor* RouterConfig::FindBgpNeighbor(util::Ipv4Address ip) const {
  if (!bgp) return nullptr;
  for (const auto& neighbor : bgp->neighbors) {
    if (neighbor.ip == ip) return &neighbor;
  }
  return nullptr;
}

std::vector<util::PrefixRange> RouterConfig::AllPrefixRanges() const {
  std::set<util::PrefixRange> ranges;
  for (const auto& [name, list] : prefix_lists) {
    for (const auto& entry : list.entries) ranges.insert(entry.range);
  }
  for (const auto& route : static_routes) {
    ranges.insert(util::PrefixRange(route.prefix));
  }
  if (bgp) {
    for (const auto& network : bgp->networks) {
      ranges.insert(util::PrefixRange(network));
    }
  }
  return {ranges.begin(), ranges.end()};
}

std::vector<util::Community> RouterConfig::AllCommunities() const {
  std::set<util::Community> communities;
  for (const auto& [name, list] : community_lists) {
    for (const auto& entry : list.entries) {
      communities.insert(entry.all_of.begin(), entry.all_of.end());
    }
  }
  for (const auto& [name, map] : route_maps) {
    for (const auto& clause : map.clauses) {
      for (const auto& set : clause.sets) {
        communities.insert(set.communities.begin(), set.communities.end());
      }
    }
  }
  return {communities.begin(), communities.end()};
}

}  // namespace campion::ir
