#pragma once

// Vendor-independent router configuration: the full per-router model that
// Campion's ConfigDiff walks. This is the rest of our Batfish substitute:
// interfaces (connected routes, OSPF link attributes, ACL bindings), static
// routes, the OSPF and BGP processes, and administrative distances.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/policy.h"
#include "util/ip.h"
#include "util/source_span.h"

namespace campion::ir {

enum class Vendor { kCisco, kJuniper, kUnknown };

std::string ToString(Vendor vendor);

// ---------------------------------------------------------------------------
// Interfaces
// ---------------------------------------------------------------------------

struct Interface {
  std::string name;
  // Interface address: the concrete IP plus its subnet length. The subnet
  // (with host bits cleared) is the connected route.
  std::optional<util::Ipv4Address> address;
  int prefix_length = 0;
  bool shutdown = false;

  // OSPF link attributes (StructuralDiff compares these per-link).
  std::optional<std::uint32_t> ospf_cost;
  std::optional<std::uint32_t> ospf_area;
  bool ospf_enabled = false;
  bool ospf_passive = false;

  // Dataplane ACL bindings by name.
  std::string in_acl;
  std::string out_acl;

  util::SourceSpan span;

  std::optional<util::Prefix> ConnectedSubnet() const {
    if (!address) return std::nullopt;
    return util::Prefix(*address, prefix_length);
  }
};

// ---------------------------------------------------------------------------
// Static routes
// ---------------------------------------------------------------------------

struct StaticRoute {
  util::Prefix prefix;
  std::optional<util::Ipv4Address> next_hop;
  std::string next_hop_interface;  // Empty if next hop is an IP.
  int admin_distance = 1;
  std::optional<std::uint32_t> tag;
  util::SourceSpan span;
};

// ---------------------------------------------------------------------------
// OSPF
// ---------------------------------------------------------------------------

struct Redistribution {
  Protocol from = Protocol::kStatic;
  std::string route_map;  // Empty = redistribute everything unmodified.
  util::SourceSpan span;
};

struct OspfProcess {
  std::uint32_t process_id = 1;
  std::optional<util::Ipv4Address> router_id;
  std::uint32_t reference_bandwidth_mbps = 100;
  std::vector<Redistribution> redistributions;
  util::SourceSpan span;
};

// ---------------------------------------------------------------------------
// BGP
// ---------------------------------------------------------------------------

struct BgpNeighbor {
  util::Ipv4Address ip;
  std::uint32_t remote_as = 0;
  std::string description;
  std::string import_policy;  // Route-map name; empty = accept unmodified.
  std::string export_policy;
  bool route_reflector_client = false;
  bool send_community = false;
  bool next_hop_self = false;
  util::SourceSpan span;

  bool IsIbgp(std::uint32_t local_as) const { return remote_as == local_as; }
};

struct BgpProcess {
  std::uint32_t asn = 0;
  std::optional<util::Ipv4Address> router_id;
  std::vector<util::Prefix> networks;  // Locally originated prefixes.
  std::vector<BgpNeighbor> neighbors;
  std::vector<Redistribution> redistributions;
  util::SourceSpan span;
};

// ---------------------------------------------------------------------------
// Administrative distances (route preference across protocols)
// ---------------------------------------------------------------------------

struct AdminDistances {
  int connected = 0;
  int static_route = 1;
  int ebgp = 20;
  int ospf = 110;
  int ibgp = 200;

  int For(Protocol p, bool ibgp_route = false) const {
    switch (p) {
      case Protocol::kConnected: return connected;
      case Protocol::kStatic: return static_route;
      case Protocol::kOspf: return ospf;
      case Protocol::kBgp: return ibgp_route ? ibgp : ebgp;
    }
    return 255;
  }

  friend bool operator==(const AdminDistances&, const AdminDistances&) =
      default;
};

// ---------------------------------------------------------------------------
// The whole router
// ---------------------------------------------------------------------------

struct RouterConfig {
  std::string hostname;
  Vendor vendor = Vendor::kUnknown;
  std::string source_file;

  std::vector<Interface> interfaces;
  std::vector<StaticRoute> static_routes;
  std::map<std::string, PrefixList> prefix_lists;
  std::map<std::string, CommunityList> community_lists;
  std::map<std::string, AsPathList> as_path_lists;
  std::map<std::string, RouteMap> route_maps;
  std::map<std::string, Acl> acls;
  std::optional<OspfProcess> ospf;
  std::optional<BgpProcess> bgp;
  AdminDistances admin_distances;

  const PrefixList* FindPrefixList(const std::string& name) const;
  const CommunityList* FindCommunityList(const std::string& name) const;
  const AsPathList* FindAsPathList(const std::string& name) const;
  const RouteMap* FindRouteMap(const std::string& name) const;
  const Acl* FindAcl(const std::string& name) const;
  const Interface* FindInterface(const std::string& name) const;
  const BgpNeighbor* FindBgpNeighbor(util::Ipv4Address ip) const;

  // All prefix ranges appearing anywhere in the configuration — the raw
  // material for HeaderLocalize (§3.2).
  std::vector<util::PrefixRange> AllPrefixRanges() const;

  // All communities mentioned anywhere — these become the community
  // variables of the symbolic route-advertisement encoding.
  std::vector<util::Community> AllCommunities() const;
};

}  // namespace campion::ir
