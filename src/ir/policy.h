#pragma once

// Vendor-independent routing-policy IR: prefix lists, community lists,
// route maps, and ACLs. Both the Cisco IOS and Juniper JunOS frontends
// lower into this representation (our substitute for Batfish's
// vendor-independent model), and Campion's SemanticDiff operates on it.
//
// Semantics captured here that matter for the paper's findings:
//   * A Cisco standard community-list with several lines matches when ANY
//     line matches (OR across entries), while each line matches only if ALL
//     communities on it are present (AND within an entry). A Juniper
//     `community X members [a b]` is a single entry requiring both — the
//     exact AND-vs-OR confusion behind Difference 2 of Table 2.
//   * Prefix-list entries carry full prefix *ranges* (ge/le,
//     prefix-length-range, orlonger, upto), the source of the 16-32 vs
//     16-16 mismatch behind Difference 1 of Table 2.
//   * Route maps have an explicit per-map fall-through action, because the
//     vendors' defaults differ (Cisco route-maps implicitly deny; Juniper
//     BGP export policies default to accepting BGP routes).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/community.h"
#include "util/ip.h"
#include "util/prefix_range.h"
#include "util/source_span.h"

namespace campion::ir {

enum class LineAction { kPermit, kDeny };

enum class Protocol { kConnected, kStatic, kOspf, kBgp };

std::string ToString(LineAction action);
std::string ToString(Protocol protocol);

// ---------------------------------------------------------------------------
// Prefix lists
// ---------------------------------------------------------------------------

struct PrefixListEntry {
  LineAction action = LineAction::kPermit;
  util::PrefixRange range;
  util::SourceSpan span;
};

struct PrefixList {
  std::string name;
  // Address family of every entry ("ip prefix-list" vs "ipv6 prefix-list";
  // both vendors keep the families in separate namespaces).
  util::AddressFamily family = util::AddressFamily::kIpv4;
  std::vector<PrefixListEntry> entries;  // First match wins; default deny.
  util::SourceSpan span;
};

// ---------------------------------------------------------------------------
// Community lists
// ---------------------------------------------------------------------------

struct CommunityListEntry {
  LineAction action = LineAction::kPermit;
  // The entry matches a route iff the route carries EVERY community here.
  std::vector<util::Community> all_of;
  util::SourceSpan span;
};

struct CommunityList {
  std::string name;
  std::vector<CommunityListEntry> entries;  // First match wins; default deny.
  util::SourceSpan span;
};

// ---------------------------------------------------------------------------
// AS-path lists
// ---------------------------------------------------------------------------

// AS-path matching is regex-based on both vendors. Campion does not model
// path contents bit-precisely (the paper treats non-prefix fields with a
// single example); two as-path lists are behaviorally equal exactly when
// their normalized regex sets are equal, so each distinct set becomes one
// uninterpreted predicate in the encoding.
struct AsPathListEntry {
  LineAction action = LineAction::kPermit;
  std::string regex;
  util::SourceSpan span;
};

struct AsPathList {
  std::string name;
  std::vector<AsPathListEntry> entries;
  util::SourceSpan span;

  // A canonical signature: equal signatures <=> behaviorally equal lists.
  std::string Signature() const;
};

// ---------------------------------------------------------------------------
// Route maps
// ---------------------------------------------------------------------------

// One match condition inside a clause. Conditions within a clause are a
// conjunction; several names within one condition are a disjunction
// ("match ip address prefix-list A B" matches A or B).
struct RouteMapMatch {
  enum class Kind {
    kPrefixList,     // names = prefix lists
    kCommunityList,  // names = community lists
    kAsPathList,     // names = as-path lists (compared as opaque regexes)
    kTag,            // value
    kProtocol,       // protocol (used by redistribution policies)
    kMetric,         // value (MED)
  };
  Kind kind = Kind::kPrefixList;
  std::vector<std::string> names;
  std::uint32_t value = 0;
  Protocol protocol = Protocol::kBgp;
  util::SourceSpan span;
};

// One attribute transformation applied by a permitting clause.
struct RouteMapSet {
  enum class Kind {
    kLocalPreference,  // value
    kMetric,           // value (MED)
    kCommunitySet,     // replace all communities with `communities`
    kCommunityAdd,     // additive
    kCommunityDelete,  // remove the listed communities
    kNextHop,          // next_hop
    kNextHopSelf,      // advertise our own session address as next hop
    kTag,              // value
  };
  Kind kind = Kind::kLocalPreference;
  std::uint32_t value = 0;
  std::vector<util::Community> communities;
  util::Ipv4Address next_hop;
  util::SourceSpan span;
};

// What a matching clause does with the route.
enum class ClauseAction {
  kPermit,       // Apply sets, accept, stop.
  kDeny,         // Reject, stop.
  kFallThrough,  // Apply sets, continue with the next clause (Juniper term
                 // without a terminating action).
};

std::string ToString(ClauseAction action);

struct RouteMapClause {
  int sequence = 0;           // Cisco sequence number / Juniper term order.
  std::string term_name;      // Juniper term name, empty for Cisco.
  ClauseAction action = ClauseAction::kPermit;
  std::vector<RouteMapMatch> matches;  // Conjunction; empty matches all.
  std::vector<RouteMapSet> sets;
  util::SourceSpan span;
};

struct RouteMap {
  std::string name;
  std::vector<RouteMapClause> clauses;
  // What happens to routes matching no clause. Set by the frontend:
  // Cisco route maps implicitly deny, Juniper BGP policies default-accept.
  ClauseAction default_action = ClauseAction::kDeny;
  util::SourceSpan span;
};

// ---------------------------------------------------------------------------
// ACLs
// ---------------------------------------------------------------------------

struct PortRange {
  std::uint16_t low = 0;
  std::uint16_t high = 65535;
  bool IsAny() const { return low == 0 && high == 65535; }
  std::string ToString() const;
  friend auto operator<=>(const PortRange&, const PortRange&) = default;
};

struct AclLine {
  LineAction action = LineAction::kPermit;
  std::optional<std::uint8_t> protocol;  // nullopt = "ip" (any protocol)
  util::IpWildcard src = util::IpWildcard::Any();
  util::IpWildcard dst = util::IpWildcard::Any();
  std::vector<PortRange> src_ports;  // Empty = any; otherwise a disjunction.
  std::vector<PortRange> dst_ports;
  std::optional<std::uint8_t> icmp_type;
  // Match only reply traffic (TCP with ACK or RST set): Cisco
  // `established`, JunOS `tcp-established`.
  bool established = false;
  util::SourceSpan span;
};

struct Acl {
  std::string name;
  // Address family of the whole ACL ("ip access-list" vs "ipv6
  // access-list", JunOS "family inet" vs "family inet6" filters); every
  // line's wildcards carry the same family.
  util::AddressFamily family = util::AddressFamily::kIpv4;
  std::vector<AclLine> lines;  // First match wins; implicit deny at end.
  util::SourceSpan span;
};

// Well-known protocol numbers used by the frontends.
inline constexpr std::uint8_t kProtoIcmp = 1;
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;
inline constexpr std::uint8_t kProtoIcmpv6 = 58;
inline constexpr std::uint8_t kProtoOspf = 89;

std::string ProtocolNumberToString(std::uint8_t protocol);

}  // namespace campion::ir
