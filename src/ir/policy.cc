#include "ir/policy.h"

namespace campion::ir {

std::string ToString(LineAction action) {
  return action == LineAction::kPermit ? "permit" : "deny";
}

std::string ToString(Protocol protocol) {
  switch (protocol) {
    case Protocol::kConnected: return "connected";
    case Protocol::kStatic: return "static";
    case Protocol::kOspf: return "ospf";
    case Protocol::kBgp: return "bgp";
  }
  return "unknown";
}

std::string ToString(ClauseAction action) {
  switch (action) {
    case ClauseAction::kPermit: return "ACCEPT";
    case ClauseAction::kDeny: return "REJECT";
    case ClauseAction::kFallThrough: return "FALL-THROUGH";
  }
  return "unknown";
}

std::string AsPathList::Signature() const {
  // Order matters (first match wins), so the signature is the entry list
  // verbatim.
  std::string out;
  for (const auto& entry : entries) {
    out += ToString(entry.action) + " " + entry.regex + "\n";
  }
  return out;
}

std::string PortRange::ToString() const {
  if (IsAny()) return "any";
  if (low == high) return std::to_string(low);
  return std::to_string(low) + "-" + std::to_string(high);
}

std::string ProtocolNumberToString(std::uint8_t protocol) {
  switch (protocol) {
    case kProtoIcmp: return "icmp";
    case kProtoTcp: return "tcp";
    case kProtoUdp: return "udp";
    case kProtoIcmpv6: return "icmpv6";
    case kProtoOspf: return "ospf";
    default: return std::to_string(protocol);
  }
}

}  // namespace campion::ir
