#include "gen/acl_gen.h"
#include <algorithm>

#include <random>

namespace campion::gen {
namespace {

using util::Ipv4Address;
using util::IpWildcard;
using util::Prefix;

class AclGenerator {
 public:
  explicit AclGenerator(const AclGenOptions& options)
      : options_(options), rng_(options.seed) {
    // Like Capirca, rules draw their addresses from a fixed pool of
    // network definitions rather than arbitrary prefixes; this matches how
    // real policies are written (a bounded set of named networks) and
    // keeps the symbolic representation of large ACLs compact.
    if (options_.family == util::AddressFamily::kIpv4) {
      for (int i = 0; i < 48; ++i) {
        int length = 16 + static_cast<int>(Uniform(13));
        std::uint32_t bits =
            (10u << 24) | (Uniform(64) << 18) | (Uniform(1024) << 8);
        network_pool_.emplace_back(Prefix(Ipv4Address(bits), length));
      }
    } else {
      // Documentation space (2001:db8::/32), lengths /48../60: the same
      // bounded-pool shape, shifted into the top 64 bits.
      for (int i = 0; i < 48; ++i) {
        int length = 48 + static_cast<int>(Uniform(13));
        std::uint64_t hi = (0x20010db8ULL << 32) |
                           (static_cast<std::uint64_t>(Uniform(64)) << 26) |
                           (static_cast<std::uint64_t>(Uniform(1024)) << 16);
        network_pool_.emplace_back(util::Prefix6(
            util::Ipv6Address(util::U128(hi, 0)), length));
      }
    }
  }

  GeneratedAclPair Run() {
    GeneratedAclPair pair;
    pair.acl1.name = options_.name;
    pair.acl1.family = options_.family;
    pair.acl2.family = options_.family;
    for (int i = 0; i < options_.rules; ++i) {
      pair.acl1.lines.push_back(RandomLine());
    }
    pair.acl2 = pair.acl1;
    pair.acl2.name = options_.name;
    InjectDifferences(pair);
    return pair;
  }

 private:
  std::uint32_t Uniform(std::uint32_t bound) {
    return std::uniform_int_distribution<std::uint32_t>(0, bound - 1)(rng_);
  }

  util::IpPrefix RandomPrefix() {
    return network_pool_[Uniform(
        static_cast<std::uint32_t>(network_pool_.size()))];
  }

  static IpWildcard WildcardOf(const util::IpPrefix& prefix) {
    return prefix.family() == util::AddressFamily::kIpv4
               ? IpWildcard(prefix.V4())
               : IpWildcard(prefix.V6());
  }

  ir::AclLine RandomLine() {
    ir::AclLine line;
    line.action =
        Uniform(4) == 0 ? ir::LineAction::kDeny : ir::LineAction::kPermit;
    switch (Uniform(4)) {
      case 0: line.protocol = ir::kProtoTcp; break;
      case 1: line.protocol = ir::kProtoUdp; break;
      case 2:
        line.protocol = options_.family == util::AddressFamily::kIpv4
                            ? ir::kProtoIcmp
                            : ir::kProtoIcmpv6;
        break;
      default: line.protocol = std::nullopt; break;  // "ip" / "ipv6"
    }
    line.src = WildcardOf(RandomPrefix());
    line.dst = WildcardOf(RandomPrefix());
    if (line.protocol == ir::kProtoTcp || line.protocol == ir::kProtoUdp) {
      static constexpr std::uint16_t kPorts[] = {22,  25,  53,   80,  123,
                                                 179, 443, 3306, 8080};
      if (Uniform(2) == 0) {
        std::uint16_t port = kPorts[Uniform(std::size(kPorts))];
        line.dst_ports.push_back({port, port});
      } else if (Uniform(4) == 0) {
        line.dst_ports.push_back({1024, 65535});
      }
    }
    return line;
  }

  void InjectDifferences(GeneratedAclPair& pair) {
    int injected = 0;
    int guard = 0;
    while (injected < options_.differences &&
           guard++ < options_.differences * 50) {
      if (pair.acl2.lines.empty()) break;
      // Mutate near the front of the ACL: a line deep in a large policy is
      // usually shadowed by earlier lines drawn from the same network
      // pool, and a shadowed mutation is not a behavioral difference.
      std::uint32_t window = static_cast<std::uint32_t>(
          std::max<std::size_t>(1, pair.acl2.lines.size() / 10));
      std::size_t index = Uniform(window);
      ir::AclLine& line = pair.acl2.lines[index];
      std::string description =
          "line " + std::to_string(index) + ": ";
      switch (Uniform(5)) {
        case 0: {  // Flip action.
          line.action = line.action == ir::LineAction::kPermit
                            ? ir::LineAction::kDeny
                            : ir::LineAction::kPermit;
          description += "flipped action";
          break;
        }
        case 1: {  // Perturb destination port.
          if (line.dst_ports.empty()) continue;
          line.dst_ports[0].low ^= 1;
          line.dst_ports[0].high = line.dst_ports[0].low;
          description += "perturbed destination port";
          break;
        }
        case 2: {  // Widen the destination prefix (le 32 style bug).
          auto prefix = line.dst.AsIpPrefix();
          if (!prefix || prefix->length() < 2) continue;
          line.dst = WildcardOf(util::IpPrefix(
              prefix->family(), prefix->address().bits(),
              prefix->length() - 1));
          description += "widened destination prefix";
          break;
        }
        case 3: {  // Delete the line.
          pair.acl2.lines.erase(pair.acl2.lines.begin() +
                                static_cast<std::ptrdiff_t>(index));
          description += "deleted line";
          break;
        }
        default: {  // Insert a fresh line ahead of this one.
          pair.acl2.lines.insert(
              pair.acl2.lines.begin() + static_cast<std::ptrdiff_t>(index),
              RandomLine());
          description += "inserted line";
          break;
        }
      }
      pair.injected.push_back(description);
      ++injected;
    }
  }

  AclGenOptions options_;
  std::mt19937_64 rng_;
  std::vector<util::IpPrefix> network_pool_;
};

}  // namespace

GeneratedAclPair GenerateAclPair(const AclGenOptions& options) {
  return AclGenerator(options).Run();
}

ir::RouterConfig WrapAclInConfig(const ir::Acl& acl,
                                 const std::string& hostname,
                                 ir::Vendor vendor) {
  ir::RouterConfig config;
  config.hostname = hostname;
  config.vendor = vendor;
  config.acls[acl.name] = acl;
  ir::Interface iface;
  iface.name = vendor == ir::Vendor::kJuniper ? "ge-0/0/0.0" : "Ethernet1";
  iface.address = Ipv4Address(10, 0, 0, 1);
  iface.prefix_length = 24;
  iface.in_acl = acl.name;
  config.interfaces.push_back(std::move(iface));
  return config;
}

}  // namespace campion::gen
