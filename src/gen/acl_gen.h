#pragma once

// Random near-equivalent ACL pair generation — our substitute for the
// Capirca-based workload of §5.4. A seeded generator emits one ACL, copies
// it, and injects a controlled number of semantic differences into the
// copy (action flips, port perturbations, prefix widenings, deletions,
// insertions). The pair can be wrapped into Cisco and Juniper router
// configurations (via the unparsers) to exercise the full
// parse-and-diff pipeline, mirroring the paper's parse-time comparison.

#include <cstdint>
#include <string>
#include <vector>

#include "ir/config.h"
#include "ir/policy.h"
#include "util/ip.h"

namespace campion::gen {

struct AclGenOptions {
  int rules = 1000;
  std::uint64_t seed = 1;
  int differences = 10;  // Mutations injected into the second copy.
  std::string name = "FILTER";
  // kIpv6 draws the network pool from 2001:db8::/32 and emits
  // `ipv6 access-list` / `family inet6` pairs; the v4 byte stream for a
  // given seed is unchanged by this knob.
  util::AddressFamily family = util::AddressFamily::kIpv4;
};

struct GeneratedAclPair {
  ir::Acl acl1;
  ir::Acl acl2;
  // One human-readable line per injected mutation.
  std::vector<std::string> injected;
};

GeneratedAclPair GenerateAclPair(const AclGenOptions& options);

// Wraps an ACL into a minimal router configuration of the given vendor
// (hostname, one interface binding the ACL inbound).
ir::RouterConfig WrapAclInConfig(const ir::Acl& acl,
                                 const std::string& hostname,
                                 ir::Vendor vendor);

}  // namespace campion::gen
