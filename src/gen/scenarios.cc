#include "gen/scenarios.h"

#include "gen/acl_gen.h"

namespace campion::gen {
namespace {

using util::Community;
using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

// --- small IR construction helpers -----------------------------------------

ir::PrefixList MakePrefixList(const std::string& name,
                              std::vector<PrefixRange> ranges) {
  ir::PrefixList list;
  list.name = name;
  for (const auto& range : ranges) {
    list.entries.push_back({ir::LineAction::kPermit, range, {}});
  }
  return list;
}

ir::CommunityList MakeOrCommunityList(const std::string& name,
                                      std::vector<Community> communities) {
  ir::CommunityList list;
  list.name = name;
  for (const auto& community : communities) {
    list.entries.push_back({ir::LineAction::kPermit, {community}, {}});
  }
  return list;
}

ir::CommunityList MakeAndCommunityList(const std::string& name,
                                       std::vector<Community> communities) {
  ir::CommunityList list;
  list.name = name;
  list.entries.push_back(
      {ir::LineAction::kPermit, std::move(communities), {}});
  return list;
}

ir::RouteMapMatch MatchPrefixList(const std::string& name) {
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kPrefixList;
  match.names = {name};
  return match;
}

ir::RouteMapMatch MatchCommunityList(const std::string& name) {
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kCommunityList;
  match.names = {name};
  return match;
}

ir::RouteMapSet SetLocalPref(std::uint32_t value) {
  ir::RouteMapSet set;
  set.kind = ir::RouteMapSet::Kind::kLocalPreference;
  set.value = value;
  return set;
}

ir::RouteMapSet SetCommunity(std::vector<Community> communities) {
  ir::RouteMapSet set;
  set.kind = ir::RouteMapSet::Kind::kCommunitySet;
  set.communities = std::move(communities);
  return set;
}

ir::RouteMapClause Clause(int seq, ir::ClauseAction action,
                          std::vector<ir::RouteMapMatch> matches,
                          std::vector<ir::RouteMapSet> sets = {}) {
  ir::RouteMapClause clause;
  clause.sequence = seq;
  clause.action = action;
  clause.matches = std::move(matches);
  clause.sets = std::move(sets);
  return clause;
}

ir::RouteMap MakeRouteMap(const std::string& name,
                          std::vector<ir::RouteMapClause> clauses,
                          ir::ClauseAction default_action) {
  ir::RouteMap map;
  map.name = name;
  map.clauses = std::move(clauses);
  map.default_action = default_action;
  return map;
}

ir::StaticRoute MakeStatic(const Prefix& prefix, Ipv4Address next_hop,
                           int distance = 1,
                           std::optional<std::uint32_t> tag = std::nullopt) {
  ir::StaticRoute route;
  route.prefix = prefix;
  route.next_hop = next_hop;
  route.admin_distance = distance;
  route.tag = tag;
  return route;
}

ir::Interface MakeInterface(const std::string& name, Ipv4Address address,
                            int length) {
  ir::Interface iface;
  iface.name = name;
  iface.address = address;
  iface.prefix_length = length;
  return iface;
}

ir::BgpNeighbor MakeNeighbor(Ipv4Address ip, std::uint32_t remote_as,
                             const std::string& import_policy,
                             const std::string& export_policy) {
  ir::BgpNeighbor neighbor;
  neighbor.ip = ip;
  neighbor.remote_as = remote_as;
  neighbor.import_policy = import_policy;
  neighbor.export_policy = export_policy;
  neighbor.send_community = true;
  return neighbor;
}

// --- data center base router -------------------------------------------------

// A Top-of-Rack router: two spine uplinks (eBGP), service prefixes
// announced through an export policy, an import filter on service ranges,
// and a couple of static routes toward management.
ir::RouterConfig MakeTorRouter(int index, ir::Vendor vendor) {
  ir::RouterConfig config;
  config.vendor = vendor;
  config.hostname = (vendor == ir::Vendor::kCisco ? "tor-c-" : "tor-j-") +
                    std::to_string(index);

  std::uint8_t rack = static_cast<std::uint8_t>(index);
  config.interfaces.push_back(MakeInterface(
      vendor == ir::Vendor::kCisco ? "Ethernet1" : "xe-0/0/0.0",
      Ipv4Address(10, 200, rack, 1), 31));
  config.interfaces.push_back(MakeInterface(
      vendor == ir::Vendor::kCisco ? "Ethernet2" : "xe-0/0/1.0",
      Ipv4Address(10, 201, rack, 1), 31));
  config.interfaces.push_back(MakeInterface(
      vendor == ir::Vendor::kCisco ? "Vlan100" : "irb.100",
      Ipv4Address(10, 1, rack, 1), 24));

  config.prefix_lists["PL-SERVICES"] = MakePrefixList(
      "PL-SERVICES", {PrefixRange(Prefix(Ipv4Address(10, 1, rack, 0), 24)),
                      PrefixRange(Prefix(Ipv4Address(10, 2, rack, 0), 24)),
                      PrefixRange(Prefix(Ipv4Address(10, 3, rack, 0), 24))});
  // The export side announces the same ranges through its own list, so an
  // import-filter bug stays localized to the import policy.
  config.prefix_lists["PL-ANNOUNCE"] = MakePrefixList(
      "PL-ANNOUNCE", {PrefixRange(Prefix(Ipv4Address(10, 1, rack, 0), 24)),
                      PrefixRange(Prefix(Ipv4Address(10, 2, rack, 0), 24)),
                      PrefixRange(Prefix(Ipv4Address(10, 3, rack, 0), 24))});
  config.prefix_lists["PL-DEFAULT"] = MakePrefixList(
      "PL-DEFAULT", {PrefixRange(Prefix(Ipv4Address(0, 0, 0, 0), 0))});
  config.community_lists["CL-DC"] =
      MakeOrCommunityList("CL-DC", {Community(65000, 100)});

  config.route_maps["IMPORT-POL"] = MakeRouteMap(
      "IMPORT-POL",
      {Clause(10, ir::ClauseAction::kPermit, {MatchPrefixList("PL-DEFAULT")},
              {SetLocalPref(100)}),
       Clause(20, ir::ClauseAction::kPermit, {MatchPrefixList("PL-SERVICES")},
              {SetLocalPref(200)})},
      ir::ClauseAction::kDeny);
  config.route_maps["EXPORT-POL"] = MakeRouteMap(
      "EXPORT-POL",
      {Clause(10, ir::ClauseAction::kPermit, {MatchPrefixList("PL-ANNOUNCE")},
              {SetCommunity({Community(65000, 100)})})},
      ir::ClauseAction::kDeny);

  ir::BgpProcess bgp;
  bgp.asn = 65100u + static_cast<std::uint32_t>(index);
  bgp.router_id = Ipv4Address(10, 1, rack, 1);
  bgp.networks = {Prefix(Ipv4Address(10, 1, rack, 0), 24)};
  bgp.neighbors.push_back(MakeNeighbor(Ipv4Address(10, 200, rack, 0), 65000,
                                       "IMPORT-POL", "EXPORT-POL"));
  bgp.neighbors.push_back(MakeNeighbor(Ipv4Address(10, 201, rack, 0), 65000,
                                       "IMPORT-POL", "EXPORT-POL"));
  config.bgp = std::move(bgp);

  config.static_routes.push_back(MakeStatic(
      Prefix(Ipv4Address(10, 250, rack, 0), 24), Ipv4Address(10, 200, rack, 0)));
  config.static_routes.push_back(MakeStatic(
      Prefix(Ipv4Address(10, 251, rack, 0), 24), Ipv4Address(10, 201, rack, 0)));
  return config;
}

// An iBGP route reflector, for the replacement scenario's severe-outage bug.
ir::RouterConfig MakeReflectorRouter(ir::Vendor vendor) {
  ir::RouterConfig config;
  config.vendor = vendor;
  config.hostname = vendor == ir::Vendor::kCisco ? "rr-c" : "rr-j";
  config.interfaces.push_back(MakeInterface(
      vendor == ir::Vendor::kCisco ? "Loopback0" : "lo0.0",
      Ipv4Address(10, 255, 0, 1), 32));

  config.prefix_lists["PL-INFRA"] = MakePrefixList(
      "PL-INFRA", {PrefixRange(Prefix(Ipv4Address(10, 0, 0, 0), 8), 8, 24)});
  config.route_maps["RR-EXPORT"] = MakeRouteMap(
      "RR-EXPORT",
      {Clause(10, ir::ClauseAction::kPermit, {MatchPrefixList("PL-INFRA")},
              {SetLocalPref(200)})},
      ir::ClauseAction::kDeny);

  ir::BgpProcess bgp;
  bgp.asn = 65000;
  bgp.router_id = Ipv4Address(10, 255, 0, 1);
  for (int i = 0; i < 4; ++i) {
    ir::BgpNeighbor client = MakeNeighbor(
        Ipv4Address(10, 255, 1, static_cast<std::uint8_t>(i + 1)), 65000, "",
        "RR-EXPORT");
    client.route_reflector_client = true;
    bgp.neighbors.push_back(std::move(client));
  }
  config.bgp = std::move(bgp);
  return config;
}

// A gateway router with an access-control filter (scenario 3).
ir::RouterConfig MakeGatewayRouter(int index, ir::Vendor vendor,
                                   const ir::Acl& acl) {
  ir::RouterConfig config = WrapAclInConfig(
      acl,
      (vendor == ir::Vendor::kCisco ? "gw-c-" : "gw-j-") +
          std::to_string(index),
      vendor);
  return config;
}

// The "translation" of a config to the other vendor: identical IR with the
// vendor tag and hostname changed — exactly what a correct manual
// translation achieves.
ir::RouterConfig TranslateToJuniper(const ir::RouterConfig& cisco,
                                    const std::string& hostname) {
  ir::RouterConfig juniper = cisco;
  juniper.vendor = ir::Vendor::kJuniper;
  juniper.hostname = hostname;
  return juniper;
}

// Pads both routers of a pair with `count` behaviorally identical
// components, deterministically derived from the index: the two sides stay
// equivalent while the unparsed text grows toward realistic sizes.
void AddFillerComponents(ir::RouterConfig& a, ir::RouterConfig& b,
                         int count) {
  auto add_to_both = [&](auto&& fn) {
    fn(a);
    fn(b);
  };
  // Prefix-list entries, 16 per list.
  for (int i = 0; i < count / 2; ++i) {
    std::string list_name = "PL-FILLER-" + std::to_string(i / 16);
    PrefixRange range(
        Prefix(Ipv4Address(172, static_cast<std::uint8_t>(16 + i / 256),
                           static_cast<std::uint8_t>(i % 256), 0),
               24),
        24, 24 + (i % 9));
    add_to_both([&](ir::RouterConfig& config) {
      auto [it, inserted] = config.prefix_lists.try_emplace(list_name);
      if (inserted) it->second.name = list_name;
      it->second.entries.push_back({ir::LineAction::kPermit, range, {}});
    });
  }
  // Static routes toward a management pod.
  for (int i = 0; i < count / 4; ++i) {
    ir::StaticRoute route = MakeStatic(
        Prefix(Ipv4Address(10, 240, static_cast<std::uint8_t>(i % 256),
                           0),
               24),
        Ipv4Address(10, 254, 0, static_cast<std::uint8_t>(1 + i % 200)));
    add_to_both(
        [&](ir::RouterConfig& config) { config.static_routes.push_back(route); });
  }
  // Access interfaces on shared subnets.
  for (int i = 0; i < count / 8; ++i) {
    std::uint8_t octet = static_cast<std::uint8_t>(i % 250);
    a.interfaces.push_back(MakeInterface(
        "Vlan" + std::to_string(100 + i), Ipv4Address(10, 230, octet, 2),
        24));
    b.interfaces.push_back(MakeInterface(
        "irb." + std::to_string(100 + i), Ipv4Address(10, 230, octet, 3),
        24));
  }
  // One sizeable, identical dataplane filter.
  if (count > 0) {
    ir::Acl acl;
    acl.name = "EDGE-PROTECT";
    for (int i = 0; i < count / 4; ++i) {
      ir::AclLine line;
      line.action =
          i % 5 == 0 ? ir::LineAction::kDeny : ir::LineAction::kPermit;
      line.protocol = i % 3 == 0 ? std::optional<std::uint8_t>(ir::kProtoTcp)
                                 : std::nullopt;
      line.src = util::IpWildcard(
          Prefix(Ipv4Address(10, static_cast<std::uint8_t>(i % 200), 0, 0),
                 16));
      line.dst = util::IpWildcard(Prefix(
          Ipv4Address(10, 230, static_cast<std::uint8_t>(i % 250), 0), 24));
      if (line.protocol == ir::kProtoTcp) {
        line.dst_ports.push_back(
            {static_cast<std::uint16_t>(1024 + i),
             static_cast<std::uint16_t>(1024 + i)});
      }
      acl.lines.push_back(std::move(line));
    }
    add_to_both([&](ir::RouterConfig& config) { config.acls[acl.name] = acl; });
  }
}

}  // namespace

DataCenterScenario BuildDataCenterScenario(std::uint64_t seed) {
  DataCenterScenario scenario;

  // ---- Scenario 1: redundant ToR pairs ------------------------------------
  for (int i = 0; i < 8; ++i) {
    RouterPair pair;
    pair.label = "redundant-tor-" + std::to_string(i);
    pair.config1 = MakeTorRouter(i, ir::Vendor::kCisco);
    pair.config2 = MakeTorRouter(i, ir::Vendor::kJuniper);
    scenario.redundant_pairs.push_back(std::move(pair));
  }
  // Five missing-BGP-policy-fragment bugs across the pairs.
  {
    // Pair 0: a service prefix missing from the backup's import filter.
    auto& lists = scenario.redundant_pairs[0].config2.prefix_lists;
    lists["PL-SERVICES"].entries.pop_back();
    scenario.redundant_pairs[0].injected.push_back(
        "BGP: prefix missing from PL-SERVICES in backup import filter");

    // Pair 1: same class of bug on the primary side.
    auto& lists1 = scenario.redundant_pairs[1].config1.prefix_lists;
    lists1["PL-SERVICES"].entries.erase(lists1["PL-SERVICES"].entries.begin());
    scenario.redundant_pairs[1].injected.push_back(
        "BGP: prefix missing from PL-SERVICES in primary import filter");

    // Pair 2: whole clause missing from the backup's import policy.
    auto& map2 = scenario.redundant_pairs[2].config2.route_maps["IMPORT-POL"];
    map2.clauses.pop_back();
    scenario.redundant_pairs[2].injected.push_back(
        "BGP: clause 20 missing from IMPORT-POL in backup");

    // Pair 3: wrong local preference in the backup's import policy.
    auto& map3 = scenario.redundant_pairs[3].config2.route_maps["IMPORT-POL"];
    map3.clauses[1].sets[0].value = 150;
    scenario.redundant_pairs[3].injected.push_back(
        "BGP: local preference 200 vs 150 in IMPORT-POL clause 20");

    // Pair 4: export tags the wrong community.
    auto& map4 = scenario.redundant_pairs[4].config2.route_maps["EXPORT-POL"];
    map4.clauses[0].sets[0].communities = {Community(65000, 101)};
    scenario.redundant_pairs[4].injected.push_back(
        "BGP: EXPORT-POL sets community 65000:101 instead of 65000:100");
  }
  scenario.scenario1_bgp_bugs = 5;
  // Two static-route next-hop bugs.
  {
    scenario.redundant_pairs[5].config2.static_routes[0].next_hop =
        Ipv4Address(10, 201, 5, 0);  // Should be 10.200.5.0.
    scenario.redundant_pairs[5].injected.push_back(
        "static: wrong next hop for 10.250.5.0/24");
    scenario.redundant_pairs[6].config2.static_routes[1].next_hop =
        Ipv4Address(10, 200, 6, 0);  // Should be 10.201.6.0.
    scenario.redundant_pairs[6].injected.push_back(
        "static: wrong next hop for 10.251.6.0/24");
  }
  scenario.scenario1_static_bugs = 2;

  // ---- Scenario 2: router replacements --------------------------------------
  for (int i = 0; i < 30; ++i) {
    RouterPair pair;
    pair.label = "replacement-" + std::to_string(i);
    if (i == 12) {
      // The route reflector replacement (the severe-outage candidate).
      pair.config1 = MakeReflectorRouter(ir::Vendor::kCisco);
      pair.config2 = TranslateToJuniper(pair.config1, "rr-j");
      pair.config2.vendor = ir::Vendor::kJuniper;
    } else {
      pair.config1 = MakeTorRouter(100 + i, ir::Vendor::kCisco);
      pair.config2 =
          TranslateToJuniper(pair.config1, "tor-j-" + std::to_string(100 + i));
    }
    scenario.replacements.push_back(std::move(pair));
  }
  {
    // Bug 1: wrong community number in the translated export policy.
    auto& map = scenario.replacements[3].config2.route_maps["EXPORT-POL"];
    map.clauses[0].sets[0].communities = {Community(65000, 10)};
    scenario.replacements[3].injected.push_back(
        "BGP: community 65000:10 instead of 65000:100 after translation");

    // Bugs 2 and 3: wrong local preferences in translated import policies.
    auto& map8 = scenario.replacements[8].config2.route_maps["IMPORT-POL"];
    map8.clauses[0].sets[0].value = 110;
    scenario.replacements[8].injected.push_back(
        "BGP: local preference 100 vs 110 after translation");
    auto& map21 = scenario.replacements[21].config2.route_maps["IMPORT-POL"];
    map21.clauses[1].sets[0].value = 20;
    scenario.replacements[21].injected.push_back(
        "BGP: local preference 200 vs 20 after translation");

    // Bug 4: the route reflector's export policy loses its local
    // preference — the would-have-been severe outage.
    auto& rr = scenario.replacements[12].config2.route_maps["RR-EXPORT"];
    rr.clauses[0].sets[0].value = 100;
    scenario.replacements[12].injected.push_back(
        "BGP: reflector export local preference 200 vs 100 (severe)");
  }
  scenario.scenario2_bgp_bugs = 4;

  // ---- Scenario 3: gateway ACLs ----------------------------------------------
  AclGenOptions acl_options;
  acl_options.rules = 60;
  acl_options.seed = seed;
  acl_options.differences = 0;
  acl_options.name = "VM_FILTER_1";
  for (int i = 0; i < 4; ++i) {
    acl_options.seed = seed + static_cast<std::uint64_t>(i);
    GeneratedAclPair generated = GenerateAclPair(acl_options);
    RouterPair pair;
    pair.label = "gateway-" + std::to_string(i);
    pair.config1 =
        MakeGatewayRouter(i, ir::Vendor::kCisco, generated.acl1);
    pair.config2 =
        MakeGatewayRouter(i, ir::Vendor::kJuniper, generated.acl2);
    scenario.gateway_pairs.push_back(std::move(pair));
  }
  {
    // Three ACL differences. Each is injected at the top of the filter so
    // it cannot be shadowed by an earlier line and is guaranteed to be a
    // behavioral difference.

    // (1) The first line's action is flipped.
    auto& acl0 = scenario.gateway_pairs[0].config2.acls["VM_FILTER_1"];
    acl0.lines[0].action = acl0.lines[0].action == ir::LineAction::kPermit
                               ? ir::LineAction::kDeny
                               : ir::LineAction::kPermit;
    scenario.gateway_pairs[0].injected.push_back(
        "ACL: flipped action on the first line");

    // (2) A permit for management traffic outside the filter's network
    // pool (the reference implicitly denies it).
    auto& acl1 = scenario.gateway_pairs[1].config2.acls["VM_FILTER_1"];
    ir::AclLine extra;
    extra.action = ir::LineAction::kPermit;
    extra.src = util::IpWildcard(Prefix(Ipv4Address(172, 31, 0, 0), 16));
    extra.dst = util::IpWildcard(Prefix(Ipv4Address(172, 31, 0, 0), 16));
    acl1.lines.insert(acl1.lines.begin(), extra);
    scenario.gateway_pairs[1].injected.push_back(
        "ACL: extra permit for 172.31.0.0/16 management traffic");

    // (3) The first line is shadowed by a copy with the opposite action.
    auto& acl2 = scenario.gateway_pairs[2].config2.acls["VM_FILTER_1"];
    ir::AclLine shadow = acl2.lines[0];
    shadow.action = shadow.action == ir::LineAction::kPermit
                        ? ir::LineAction::kDeny
                        : ir::LineAction::kPermit;
    acl2.lines.insert(acl2.lines.begin(), shadow);
    scenario.gateway_pairs[2].injected.push_back(
        "ACL: first line shadowed by opposite action");
  }
  scenario.scenario3_acl_bugs = 3;

  return scenario;
}

UniversityScenario BuildUniversityScenario(int filler_components) {
  UniversityScenario scenario;
  scenario.core_exports = {"EXPORT-1", "EXPORT-2"};
  scenario.border_exports = {"EXPORT-3", "EXPORT-4", "EXPORT-5"};
  scenario.import_policy = "IMPORT-CORE";

  const PrefixRange nets_window1(Prefix(Ipv4Address(10, 9, 0, 0), 16), 16, 32);
  const PrefixRange nets_window2(Prefix(Ipv4Address(10, 100, 0, 0), 16), 16,
                                 32);
  const PrefixRange nets_exact1(Prefix(Ipv4Address(10, 9, 0, 0), 16));
  const PrefixRange nets_exact2(Prefix(Ipv4Address(10, 100, 0, 0), 16));
  const PrefixRange pl3_range(Prefix(Ipv4Address(192, 168, 0, 0), 16), 16,
                              24);

  // ---- Core pair --------------------------------------------------------------
  ir::RouterConfig& cisco = scenario.core.config1;
  ir::RouterConfig& juniper = scenario.core.config2;
  scenario.core.label = "core-routers";
  cisco.vendor = ir::Vendor::kCisco;
  cisco.hostname = "core-cisco";
  juniper.vendor = ir::Vendor::kJuniper;
  juniper.hostname = "core-juniper";

  cisco.interfaces.push_back(
      MakeInterface("TenGigE0/0/0", Ipv4Address(10, 0, 1, 1), 24));
  juniper.interfaces.push_back(
      MakeInterface("xe-0/0/0.0", Ipv4Address(10, 0, 1, 2), 24));

  // Prefix lists: the Figure 1 window error.
  cisco.prefix_lists["NETS"] =
      MakePrefixList("NETS", {nets_window1, nets_window2});
  juniper.prefix_lists["NETS"] =
      MakePrefixList("NETS", {nets_exact1, nets_exact2});
  cisco.prefix_lists["PL3"] = MakePrefixList("PL3", {pl3_range});
  juniper.prefix_lists["PL3"] = MakePrefixList("PL3", {pl3_range});

  // Community lists: the OR vs AND error, plus the third-clause community.
  cisco.community_lists["COMM"] = MakeOrCommunityList(
      "COMM", {Community(10, 10), Community(10, 11)});
  juniper.community_lists["COMM"] = MakeAndCommunityList(
      "COMM", {Community(10, 10), Community(10, 11)});
  juniper.community_lists["C3"] =
      MakeOrCommunityList("C3", {Community(10, 30)});

  // EXPORT-1: five raw differences (window, AND/OR, third-clause community,
  // set-vs-no-set on PL3, and fall-through accept vs deny).
  cisco.route_maps["EXPORT-1"] = MakeRouteMap(
      "EXPORT-1",
      {Clause(10, ir::ClauseAction::kDeny, {MatchPrefixList("NETS")}),
       Clause(20, ir::ClauseAction::kDeny, {MatchCommunityList("COMM")}),
       Clause(30, ir::ClauseAction::kPermit, {MatchPrefixList("PL3")},
              {SetLocalPref(30)})},
      ir::ClauseAction::kDeny);
  juniper.route_maps["EXPORT-1"] = MakeRouteMap(
      "EXPORT-1",
      {Clause(10, ir::ClauseAction::kDeny, {MatchPrefixList("NETS")}),
       Clause(20, ir::ClauseAction::kDeny, {MatchCommunityList("COMM")}),
       Clause(30, ir::ClauseAction::kPermit,
              {MatchPrefixList("PL3"), MatchCommunityList("C3")},
              {SetLocalPref(30)})},
      ir::ClauseAction::kPermit);

  // EXPORT-2: only the prefix-window error.
  cisco.route_maps["EXPORT-2"] = MakeRouteMap(
      "EXPORT-2",
      {Clause(10, ir::ClauseAction::kDeny, {MatchPrefixList("NETS")}),
       Clause(20, ir::ClauseAction::kPermit, {})},
      ir::ClauseAction::kDeny);
  juniper.route_maps["EXPORT-2"] = MakeRouteMap(
      "EXPORT-2",
      {Clause(10, ir::ClauseAction::kDeny, {MatchPrefixList("NETS")}),
       Clause(20, ir::ClauseAction::kPermit, {})},
      ir::ClauseAction::kPermit);

  // IMPORT-CORE: identical on both sides (0 differences). It references
  // PL3, which is defined identically in both configurations — a map that
  // referenced NETS would inherit the prefix-window difference.
  for (ir::RouterConfig* config : {&cisco, &juniper}) {
    config->route_maps["IMPORT-CORE"] = MakeRouteMap(
        "IMPORT-CORE",
        {Clause(10, ir::ClauseAction::kDeny, {MatchPrefixList("PL3")}),
         Clause(20, ir::ClauseAction::kPermit, {}, {SetLocalPref(120)})},
        ir::ClauseAction::kDeny);
  }

  // Static routes: one prefix with differing next hops and admin distances
  // (the intentional class), and two workaround routes present only on the
  // Cisco side (the §2.2 class).
  cisco.static_routes.push_back(
      MakeStatic(Prefix(Ipv4Address(172, 16, 1, 0), 24),
                 Ipv4Address(10, 0, 1, 254), 1));
  juniper.static_routes.push_back(
      MakeStatic(Prefix(Ipv4Address(172, 16, 1, 0), 24),
                 Ipv4Address(10, 0, 1, 253), 5));
  cisco.static_routes.push_back(MakeStatic(
      Prefix(Ipv4Address(10, 1, 1, 2), 31), Ipv4Address(10, 2, 2, 2), 1));
  cisco.static_routes.push_back(MakeStatic(
      Prefix(Ipv4Address(10, 1, 1, 4), 31), Ipv4Address(10, 2, 2, 2), 1));

  // BGP: two external neighbors carrying the export policies, one import
  // pair, and the send-community property difference on the iBGP neighbors
  // (Cisco missing the send-community command; JunOS sends by default).
  {
    ir::BgpProcess bgp;
    bgp.asn = 64700;
    bgp.router_id = Ipv4Address(10, 0, 1, 1);
    bgp.neighbors.push_back(
        MakeNeighbor(Ipv4Address(10, 0, 2, 1), 64701, "", "EXPORT-1"));
    bgp.neighbors.push_back(
        MakeNeighbor(Ipv4Address(10, 0, 3, 1), 64702, "IMPORT-CORE",
                     "EXPORT-2"));
    ir::BgpNeighbor ibgp1 =
        MakeNeighbor(Ipv4Address(10, 0, 10, 1), 64700, "", "");
    ir::BgpNeighbor ibgp2 =
        MakeNeighbor(Ipv4Address(10, 0, 10, 2), 64700, "", "");
    ibgp1.send_community = false;  // The missing neighbor send-community.
    ibgp2.send_community = false;
    bgp.neighbors.push_back(std::move(ibgp1));
    bgp.neighbors.push_back(std::move(ibgp2));
    cisco.bgp = bgp;

    ir::BgpProcess jbgp = bgp;
    jbgp.router_id = Ipv4Address(10, 0, 1, 2);
    for (auto& neighbor : jbgp.neighbors) neighbor.send_community = true;
    juniper.bgp = std::move(jbgp);
  }
  scenario.core.injected = {
      "EXPORT-1: prefix window 16-32 vs exact (Fig.1 difference 1)",
      "EXPORT-1: community OR vs AND (Fig.1 difference 2)",
      "EXPORT-1: third clause matches community C3 only on Juniper",
      "EXPORT-1/2: fall-through deny (Cisco) vs accept (Juniper)",
      "static: 172.16.1.0/24 next-hop/AD differ (intentional)",
      "static: two workaround routes only on Cisco (intentional)",
      "BGP: iBGP neighbors missing send-community on Cisco",
  };

  // ---- Border pair ---------------------------------------------------------------
  ir::RouterConfig& border_cisco = scenario.border.config1;
  ir::RouterConfig& border_juniper = scenario.border.config2;
  scenario.border.label = "border-routers";
  border_cisco.vendor = ir::Vendor::kCisco;
  border_cisco.hostname = "border-cisco";
  border_juniper.vendor = ir::Vendor::kJuniper;
  border_juniper.hostname = "border-juniper";

  border_cisco.interfaces.push_back(
      MakeInterface("TenGigE0/1/0", Ipv4Address(192, 0, 2, 1), 30));
  border_juniper.interfaces.push_back(
      MakeInterface("xe-0/1/0.0", Ipv4Address(192, 0, 2, 2), 30));

  // EXPORT-3: the community "regex" error — Cisco matches 65000:100 alone,
  // the Juniper expression additionally requires 65000:101.
  border_cisco.community_lists["CL3"] =
      MakeOrCommunityList("CL3", {Community(65000, 100)});
  border_juniper.community_lists["CL3"] = MakeAndCommunityList(
      "CL3", {Community(65000, 100), Community(65000, 101)});
  for (ir::RouterConfig* config : {&border_cisco, &border_juniper}) {
    config->route_maps["EXPORT-3"] = MakeRouteMap(
        "EXPORT-3",
        {Clause(10, ir::ClauseAction::kPermit, {MatchCommunityList("CL3")}),
         Clause(20, ir::ClauseAction::kDeny, {})},
        ir::ClauseAction::kDeny);
  }

  // EXPORT-4: Cisco accepts either of two communities, Juniper only one.
  border_cisco.community_lists["CL4"] = MakeOrCommunityList(
      "CL4", {Community(65000, 200), Community(65000, 201)});
  border_juniper.community_lists["CL4"] =
      MakeOrCommunityList("CL4", {Community(65000, 200)});
  for (ir::RouterConfig* config : {&border_cisco, &border_juniper}) {
    config->route_maps["EXPORT-4"] = MakeRouteMap(
        "EXPORT-4",
        {Clause(10, ir::ClauseAction::kDeny, {MatchCommunityList("CL4")}),
         Clause(20, ir::ClauseAction::kPermit, {})},
        ir::ClauseAction::kDeny);
  }

  // EXPORT-5: one prefix absent from the Juniper list; the differing
  // fall-through contributes a second raw output for the same issue.
  border_cisco.prefix_lists["PL5"] = MakePrefixList(
      "PL5", {PrefixRange(Prefix(Ipv4Address(198, 51, 100, 0), 24)),
              PrefixRange(Prefix(Ipv4Address(203, 0, 113, 0), 24)),
              PrefixRange(Prefix(Ipv4Address(198, 18, 0, 0), 15))});
  border_juniper.prefix_lists["PL5"] = MakePrefixList(
      "PL5", {PrefixRange(Prefix(Ipv4Address(198, 51, 100, 0), 24)),
              PrefixRange(Prefix(Ipv4Address(203, 0, 113, 0), 24))});
  border_cisco.route_maps["EXPORT-5"] = MakeRouteMap(
      "EXPORT-5",
      {Clause(10, ir::ClauseAction::kPermit, {MatchPrefixList("PL5")},
              {SetLocalPref(40)})},
      ir::ClauseAction::kDeny);
  border_juniper.route_maps["EXPORT-5"] = MakeRouteMap(
      "EXPORT-5",
      {Clause(10, ir::ClauseAction::kPermit, {MatchPrefixList("PL5")},
              {SetLocalPref(40)})},
      ir::ClauseAction::kPermit);

  for (ir::RouterConfig* config : {&border_cisco, &border_juniper}) {
    ir::BgpProcess bgp;
    bgp.asn = 64700;
    bgp.router_id = config == &border_cisco ? Ipv4Address(192, 0, 2, 1)
                                            : Ipv4Address(192, 0, 2, 2);
    bgp.neighbors.push_back(
        MakeNeighbor(Ipv4Address(192, 0, 2, 9), 3356, "", "EXPORT-3"));
    bgp.neighbors.push_back(
        MakeNeighbor(Ipv4Address(192, 0, 2, 13), 174, "", "EXPORT-4"));
    bgp.neighbors.push_back(
        MakeNeighbor(Ipv4Address(192, 0, 2, 17), 6939, "", "EXPORT-5"));
    config->bgp = std::move(bgp);
  }
  scenario.border.injected = {
      "EXPORT-3: community expression requires both tags on Juniper",
      "EXPORT-4: community 65000:201 accepted only by Cisco",
      "EXPORT-5: prefix 198.18.0.0/15 missing from Juniper PL5",
  };

  if (filler_components > 0) {
    AddFillerComponents(scenario.core.config1, scenario.core.config2,
                        filler_components);
    AddFillerComponents(scenario.border.config1, scenario.border.config2,
                        filler_components);
  }
  return scenario;
}

}  // namespace campion::gen
