#pragma once

// Synthesized evaluation networks. The paper evaluates Campion on a
// production cloud data center (Table 6) and a university campus network
// (Table 8); those configurations are confidential, so these builders
// recreate the *described error classes* in realistic synthetic
// configurations of the same shape:
//
// Data center (§5.1):
//   Scenario 1 — redundant ToR pairs with 5 missing-BGP-policy-fragment
//                bugs and 2 static-route next-hop bugs;
//   Scenario 2 — 30 router replacements with 1 wrong community number and
//                3 wrong local preferences (one on an iBGP route-reflector
//                export, the would-have-been-severe-outage bug);
//   Scenario 3 — gateway routers with 3 ACL differences.
//
// University (§5.2):
//   Core router pair — Export 1 (the Figure 1 errors plus the third-clause
//   community match and differing fall-through, 5 raw differences),
//   Export 2 (prefix-window error only, 1), an equivalent import pair, the
//   static-route differences, and the send-community BGP property
//   difference. Border pair — Exports 3/4 (community set errors, 1 each)
//   and Export 5 (missing prefix, 2 raw outputs for 1 underlying issue).

#include <cstdint>
#include <string>
#include <vector>

#include "ir/config.h"

namespace campion::gen {

struct RouterPair {
  ir::RouterConfig config1;
  ir::RouterConfig config2;
  std::string label;
  // Ground truth: descriptions of the bugs injected into this pair
  // (empty = the pair is behaviorally equivalent).
  std::vector<std::string> injected;
};

struct DataCenterScenario {
  std::vector<RouterPair> redundant_pairs;  // Scenario 1 (8 ToR pairs).
  std::vector<RouterPair> replacements;     // Scenario 2 (30 replacements).
  std::vector<RouterPair> gateway_pairs;    // Scenario 3 (4 gateways).

  // Ground-truth totals matching Table 6.
  int scenario1_bgp_bugs = 0;     // 5
  int scenario1_static_bugs = 0;  // 2
  int scenario2_bgp_bugs = 0;     // 4
  int scenario3_acl_bugs = 0;     // 3
};

DataCenterScenario BuildDataCenterScenario(std::uint64_t seed = 7);

struct UniversityScenario {
  RouterPair core;    // cisco core vs juniper core.
  RouterPair border;  // cisco border vs juniper border.
  std::vector<std::string> core_exports;    // {"EXPORT-1", "EXPORT-2"}
  std::vector<std::string> border_exports;  // {"EXPORT-3","EXPORT-4","EXPORT-5"}
  std::string import_policy;                // "IMPORT-CORE" (0 differences)
};

// `filler_components` pads each router with that many additional,
// behaviorally identical components (prefix-list entries, static routes,
// interfaces, ACL lines) so the unparsed configurations approach the
// paper's real sizes (~1800-3500 lines) without adding differences.
UniversityScenario BuildUniversityScenario(int filler_components = 0);

}  // namespace campion::gen
