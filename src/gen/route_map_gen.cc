#include "gen/route_map_gen.h"

#include <random>

namespace campion::gen {
namespace {

using util::Community;
using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

class RouteMapGenerator {
 public:
  explicit RouteMapGenerator(const RouteMapGenOptions& options)
      : options_(options), rng_(options.seed) {}

  GeneratedRouteMapPair Run() {
    GeneratedRouteMapPair pair;
    pair.map_name = options_.map_name;
    BuildLists(pair.config1);
    pair.config2 = pair.config1;

    ir::RouteMap map = RandomMap();
    pair.config1.route_maps[options_.map_name] = map;
    pair.config2.route_maps[options_.map_name] = map;
    InjectDifferences(pair);
    return pair;
  }

 private:
  std::uint32_t Uniform(std::uint32_t bound) {
    return std::uniform_int_distribution<std::uint32_t>(0, bound - 1)(rng_);
  }

  PrefixRange RandomRange() {
    // Tree-structured pool under 10.0.0.0/8 with varied windows.
    int length = 10 + static_cast<int>(Uniform(12));
    std::uint32_t bits = (10u << 24) | (Uniform(1u << 10) << 14);
    int low = length + static_cast<int>(Uniform(4));
    int high = low + static_cast<int>(Uniform(static_cast<std::uint32_t>(
                         33 - low)));
    return PrefixRange(Prefix(Ipv4Address(bits), length), low, high);
  }

  Community CommunityAt(std::uint32_t index) {
    return Community(64500, static_cast<std::uint16_t>(index));
  }

  void BuildLists(ir::RouterConfig& config) {
    for (int l = 0; l < options_.prefix_lists; ++l) {
      ir::PrefixList list;
      list.name = "PL-" + std::to_string(l);
      for (int e = 0; e < options_.entries_per_list; ++e) {
        // Permit-only: JunOS prefix-lists and route-filters carry no
        // per-entry action, so deny entries have no cross-vendor
        // equivalent; generated policies stay inside both vendors'
        // expressible domain. (Cisco deny entries are covered by the
        // parser and encoder unit tests.)
        list.entries.push_back(
            {ir::LineAction::kPermit, RandomRange(), {}});
      }
      config.prefix_lists[list.name] = std::move(list);
    }
    // A few community lists with 1-2 members (both OR and AND shapes).
    for (int c = 0; c < 3; ++c) {
      ir::CommunityList list;
      list.name = "CL-" + std::to_string(c);
      int entries = 1 + static_cast<int>(Uniform(2));
      for (int e = 0; e < entries; ++e) {
        std::vector<Community> all_of{CommunityAt(Uniform(
            static_cast<std::uint32_t>(options_.communities)))};
        if (Uniform(3) == 0) {
          all_of.push_back(CommunityAt(Uniform(
              static_cast<std::uint32_t>(options_.communities))));
        }
        list.entries.push_back(
            {ir::LineAction::kPermit, std::move(all_of), {}});
      }
      config.community_lists[list.name] = std::move(list);
    }
  }

  ir::RouteMapClause RandomClause(int sequence) {
    ir::RouteMapClause clause;
    clause.sequence = sequence;
    std::uint32_t action = Uniform(10);
    clause.action = action < 5   ? ir::ClauseAction::kPermit
                    : action < 9 ? ir::ClauseAction::kDeny
                                 : ir::ClauseAction::kFallThrough;
    // Matches: usually a prefix list, sometimes a community, rarely both.
    if (Uniform(10) != 0) {
      ir::RouteMapMatch match;
      match.kind = ir::RouteMapMatch::Kind::kPrefixList;
      match.names = {"PL-" + std::to_string(Uniform(static_cast<std::uint32_t>(
                                options_.prefix_lists)))};
      clause.matches.push_back(std::move(match));
    }
    if (Uniform(3) == 0) {
      ir::RouteMapMatch match;
      match.kind = ir::RouteMapMatch::Kind::kCommunityList;
      match.names = {"CL-" + std::to_string(Uniform(3))};
      clause.matches.push_back(std::move(match));
    }
    if (Uniform(6) == 0) {
      ir::RouteMapMatch match;
      match.kind = ir::RouteMapMatch::Kind::kTag;
      match.value = 100 * (1 + Uniform(3));
      clause.matches.push_back(std::move(match));
    }
    // Sets on permitting/fall-through clauses.
    if (clause.action != ir::ClauseAction::kDeny) {
      if (Uniform(2) == 0) {
        ir::RouteMapSet set;
        set.kind = ir::RouteMapSet::Kind::kLocalPreference;
        set.value = 50 + 10 * Uniform(20);
        clause.sets.push_back(std::move(set));
      }
      if (Uniform(3) == 0) {
        ir::RouteMapSet set;
        set.kind = Uniform(2) == 0 ? ir::RouteMapSet::Kind::kCommunityAdd
                                   : ir::RouteMapSet::Kind::kCommunitySet;
        set.communities = {CommunityAt(Uniform(
            static_cast<std::uint32_t>(options_.communities)))};
        clause.sets.push_back(std::move(set));
      }
      if (Uniform(5) == 0) {
        ir::RouteMapSet set;
        set.kind = ir::RouteMapSet::Kind::kMetric;
        set.value = Uniform(1000);
        clause.sets.push_back(std::move(set));
      }
    }
    return clause;
  }

  ir::RouteMap RandomMap() {
    ir::RouteMap map;
    map.name = options_.map_name;
    for (int c = 0; c < options_.clauses; ++c) {
      map.clauses.push_back(RandomClause(10 * (c + 1)));
    }
    map.default_action = Uniform(2) == 0 ? ir::ClauseAction::kPermit
                                         : ir::ClauseAction::kDeny;
    return map;
  }

  void InjectDifferences(GeneratedRouteMapPair& pair) {
    ir::RouteMap& map = pair.config2.route_maps[options_.map_name];
    int injected = 0;
    int guard = 0;
    while (injected < options_.differences && guard++ < 100 &&
           !map.clauses.empty()) {
      std::size_t index =
          Uniform(static_cast<std::uint32_t>(map.clauses.size()));
      ir::RouteMapClause& clause = map.clauses[index];
      std::string what = "clause " + std::to_string(clause.sequence) + ": ";
      switch (Uniform(4)) {
        case 0:
          clause.action = clause.action == ir::ClauseAction::kPermit
                              ? ir::ClauseAction::kDeny
                              : ir::ClauseAction::kPermit;
          what += "flipped action";
          break;
        case 1: {
          if (clause.sets.empty()) continue;
          clause.sets[0].value += 10;
          what += "perturbed set value";
          break;
        }
        case 2: {
          // Mutate a referenced prefix list's entry window in config2.
          if (clause.matches.empty() ||
              clause.matches[0].kind != ir::RouteMapMatch::Kind::kPrefixList) {
            continue;
          }
          auto& list =
              pair.config2.prefix_lists[clause.matches[0].names[0]];
          if (list.entries.empty()) continue;
          const PrefixRange& r = list.entries[0].range;
          list.entries[0].range =
              PrefixRange(r.prefix(), r.low(),
                          r.high() == 32 ? r.low() : 32);
          what += "changed prefix window in " + list.name;
          break;
        }
        default:
          map.clauses.erase(map.clauses.begin() +
                            static_cast<std::ptrdiff_t>(index));
          what += "deleted clause";
          break;
      }
      pair.injected.push_back(what);
      ++injected;
    }
  }

  RouteMapGenOptions options_;
  std::mt19937_64 rng_;
};

}  // namespace

GeneratedRouteMapPair GenerateRouteMapPair(const RouteMapGenOptions& options) {
  return RouteMapGenerator(options).Run();
}

std::vector<RandomRoute> SampleRoutes(const GeneratedRouteMapPair& pair,
                                      int count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto uniform = [&](std::uint32_t bound) {
    return std::uniform_int_distribution<std::uint32_t>(0, bound - 1)(rng);
  };

  // Pool of interesting prefixes: members and near-misses of every range
  // constant in either configuration, plus some random ones.
  std::vector<Prefix> prefixes;
  for (const ir::RouterConfig* config : {&pair.config1, &pair.config2}) {
    for (const auto& range : config->AllPrefixRanges()) {
      if (range.family() != util::AddressFamily::kIpv4) continue;
      const Prefix base = range.prefix().V4();
      prefixes.push_back(base);
      if (range.low() <= 32) {
        prefixes.push_back(Prefix(base.address(), range.low()));
      }
      if (range.high() <= 32) {
        prefixes.push_back(Prefix(base.address(), range.high()));
      }
      if (range.high() + 1 <= 32) {
        prefixes.push_back(Prefix(base.address(), range.high() + 1));
      }
      // A sibling that shares all but the last base bit.
      if (base.length() > 0) {
        std::uint32_t flipped =
            base.address().bits() ^ (1u << (32 - base.length()));
        prefixes.push_back(Prefix(Ipv4Address(flipped), base.length()));
      }
    }
  }
  std::vector<Community> communities;
  for (const ir::RouterConfig* config : {&pair.config1, &pair.config2}) {
    for (const auto& community : config->AllCommunities()) {
      communities.push_back(community);
    }
  }

  std::vector<RandomRoute> routes;
  routes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    RandomRoute route;
    if (!prefixes.empty() && uniform(8) != 0) {
      route.prefix =
          prefixes[uniform(static_cast<std::uint32_t>(prefixes.size()))];
    } else {
      int length = static_cast<int>(uniform(33));
      route.prefix = Prefix(Ipv4Address(rng() & 0xFFFFFFFFu), length);
    }
    for (const auto& community : communities) {
      if (uniform(3) == 0) route.communities.push_back(community);
    }
    route.tag = uniform(2) == 0 ? 0 : 100 * (1 + uniform(3));
    route.metric = uniform(1000);
    routes.push_back(std::move(route));
  }
  return routes;
}

}  // namespace campion::gen
