#include "gen/router_gen.h"

#include <random>

#include "gen/acl_gen.h"
#include "gen/route_map_gen.h"

namespace campion::gen {
namespace {

using util::Community;
using util::Ipv4Address;
using util::Prefix;

class RouterGenerator {
 public:
  explicit RouterGenerator(const RouterGenOptions& options)
      : options_(options), rng_(options.seed) {}

  ir::RouterConfig Run() {
    ir::RouterConfig config;
    config.hostname = "gen-" + std::to_string(options_.seed);
    config.vendor = ir::Vendor::kUnknown;

    AddInterfaces(config);
    AddStaticRoutes(config);
    AddPolicies(config);
    AddAcls(config);
    if (options_.with_ospf) AddOspf(config);
    if (options_.with_bgp) AddBgp(config);
    return config;
  }

 private:
  std::uint32_t Uniform(std::uint32_t bound) {
    return std::uniform_int_distribution<std::uint32_t>(0, bound - 1)(rng_);
  }

  void AddInterfaces(ir::RouterConfig& config) {
    for (int i = 0; i < options_.interfaces; ++i) {
      ir::Interface iface;
      iface.name = "Ethernet" + std::to_string(i);
      iface.address =
          Ipv4Address(10, 100, static_cast<std::uint8_t>(i), 1);
      iface.prefix_length = 24 + static_cast<int>(Uniform(8));
      if (iface.prefix_length > 31) iface.prefix_length = 31;
      iface.shutdown = Uniform(10) == 0;
      config.interfaces.push_back(std::move(iface));
    }
  }

  void AddStaticRoutes(ir::RouterConfig& config) {
    for (int i = 0; i < options_.static_routes; ++i) {
      ir::StaticRoute route;
      route.prefix = Prefix(
          Ipv4Address(10, 250, static_cast<std::uint8_t>(Uniform(200)), 0),
          24);
      route.next_hop =
          Ipv4Address(10, 100, static_cast<std::uint8_t>(Uniform(
                                   static_cast<std::uint32_t>(
                                       options_.interfaces))),
                      254);
      route.admin_distance = Uniform(4) == 0 ? 250 : 1;
      if (Uniform(3) == 0) route.tag = 100 * (1 + Uniform(5));
      config.static_routes.push_back(std::move(route));
    }
  }

  void AddPolicies(ir::RouterConfig& config) {
    RouteMapGenOptions map_options;
    map_options.seed = rng_();
    map_options.clauses = 3 + static_cast<int>(Uniform(5));
    for (int m = 0; m < options_.route_maps; ++m) {
      map_options.map_name = "MAP-" + std::to_string(m);
      map_options.seed = rng_();
      GeneratedRouteMapPair pair = GenerateRouteMapPair(map_options);
      // Merge the generated lists and map into the config (names from the
      // generator are stable, so later maps reuse earlier lists).
      for (auto& [name, list] : pair.config1.prefix_lists) {
        config.prefix_lists[name] = list;
      }
      for (auto& [name, list] : pair.config1.community_lists) {
        config.community_lists[name] = list;
      }
      config.route_maps[map_options.map_name] =
          pair.config1.route_maps[map_options.map_name];
    }
    // One as-path list, sometimes referenced by a map clause.
    ir::AsPathList as_path;
    as_path.name = "ASP-1";
    as_path.entries.push_back(
        {ir::LineAction::kPermit,
         "^" + std::to_string(64000 + Uniform(1000)) + "_", {}});
    config.as_path_lists[as_path.name] = as_path;
    if (!config.route_maps.empty() && Uniform(2) == 0) {
      auto& map = config.route_maps.begin()->second;
      if (!map.clauses.empty()) {
        ir::RouteMapMatch match;
        match.kind = ir::RouteMapMatch::Kind::kAsPathList;
        match.names = {"ASP-1"};
        map.clauses[0].matches.push_back(std::move(match));
      }
    }
  }

  void AddAcls(ir::RouterConfig& config) {
    AclGenOptions acl_options;
    for (int a = 0; a < options_.acls; ++a) {
      acl_options.seed = rng_();
      acl_options.rules = 10 + static_cast<int>(Uniform(30));
      acl_options.differences = 0;
      acl_options.name = "ACL-" + std::to_string(a);
      GeneratedAclPair pair = GenerateAclPair(acl_options);
      config.acls[acl_options.name] = pair.acl1;
      if (a < options_.interfaces) {
        config.interfaces[static_cast<std::size_t>(a)].in_acl =
            acl_options.name;
      }
    }
  }

  void AddOspf(ir::RouterConfig& config) {
    config.ospf.emplace();
    config.ospf->process_id = 1;
    config.ospf->reference_bandwidth_mbps = Uniform(2) == 0 ? 100 : 100000;
    for (std::size_t i = 0; i < config.interfaces.size(); i += 2) {
      config.interfaces[i].ospf_enabled = true;
      config.interfaces[i].ospf_area = Uniform(2);
      if (Uniform(2) == 0) {
        config.interfaces[i].ospf_cost = 10 * (1 + Uniform(10));
      }
      config.interfaces[i].ospf_passive = Uniform(5) == 0;
    }
    if (!config.route_maps.empty() && Uniform(2) == 0) {
      config.ospf->redistributions.push_back(
          {ir::Protocol::kStatic, config.route_maps.begin()->first, {}});
    }
  }

  void AddBgp(ir::RouterConfig& config) {
    ir::BgpProcess bgp;
    bgp.asn = 64500 + Uniform(1000);
    bgp.router_id = Ipv4Address(10, 100, 0, 1);
    int networks = 1 + static_cast<int>(Uniform(3));
    for (int n = 0; n < networks; ++n) {
      bgp.networks.push_back(Prefix(
          Ipv4Address(10, 100, static_cast<std::uint8_t>(n), 0), 24));
    }
    int neighbors = 2 + static_cast<int>(Uniform(3));
    std::vector<std::string> map_names;
    for (const auto& [name, map] : config.route_maps) {
      map_names.push_back(name);
    }
    for (int n = 0; n < neighbors; ++n) {
      ir::BgpNeighbor neighbor;
      neighbor.ip =
          Ipv4Address(10, 200, static_cast<std::uint8_t>(n), 2);
      bool internal = Uniform(3) == 0;
      neighbor.remote_as = internal ? bgp.asn : 64000 + Uniform(500);
      // Always send communities: JunOS has no per-neighbor opt-out, so
      // send_community=false is Cisco-only (covered by the university
      // scenario, where it is precisely the reported difference).
      neighbor.send_community = true;
      // The next-hop-self *neighbor property* is Cisco-only (JunOS uses a
      // `then next-hop self` export policy); keep generated configs inside
      // the shared domain.
      neighbor.next_hop_self = false;
      neighbor.route_reflector_client = internal && Uniform(2) == 0;
      if (!map_names.empty() && Uniform(3) != 0) {
        neighbor.import_policy = map_names[Uniform(
            static_cast<std::uint32_t>(map_names.size()))];
      }
      if (!map_names.empty() && Uniform(3) != 0) {
        neighbor.export_policy = map_names[Uniform(
            static_cast<std::uint32_t>(map_names.size()))];
      }
      bgp.neighbors.push_back(std::move(neighbor));
    }
    if (!map_names.empty() && Uniform(2) == 0) {
      bgp.redistributions.push_back(
          {ir::Protocol::kConnected, map_names[0], {}});
    }
    config.bgp = std::move(bgp);
  }

  RouterGenOptions options_;
  std::mt19937_64 rng_;
};

}  // namespace

ir::RouterConfig GenerateRouterConfig(const RouterGenOptions& options) {
  return RouterGenerator(options).Run();
}

}  // namespace campion::gen
