#pragma once

// Whole-router configuration generation: seeded random RouterConfigs
// exercising every IR feature at once (interfaces, static routes, prefix /
// community / as-path lists, route maps, ACLs, OSPF, BGP with reflector
// clients). Drives the whole-config round-trip property tests (unparse to
// either vendor, re-parse, ConfigDiff must find nothing).

#include <cstdint>

#include "ir/config.h"

namespace campion::gen {

struct RouterGenOptions {
  std::uint64_t seed = 1;
  int interfaces = 6;
  int static_routes = 8;
  int route_maps = 3;
  int acls = 2;
  bool with_ospf = true;
  bool with_bgp = true;
};

ir::RouterConfig GenerateRouterConfig(const RouterGenOptions& options);

}  // namespace campion::gen
