#pragma once

// Random route-map workload generation: seeded, near-equivalent policy
// pairs with optional injected differences, in the style of the ACL
// generator. Used by the scaling benchmarks and by the cross-validation
// property tests (symbolic SemanticDiff vs concrete route evaluation).

#include <cstdint>
#include <string>
#include <vector>

#include "ir/config.h"

namespace campion::gen {

struct RouteMapGenOptions {
  int clauses = 10;
  int prefix_lists = 4;       // Pool of named prefix lists.
  int entries_per_list = 4;
  int communities = 6;        // Pool of community constants.
  std::uint64_t seed = 1;
  int differences = 0;        // Mutations injected into the second copy.
  std::string map_name = "POLICY";
};

struct GeneratedRouteMapPair {
  // Each config carries its lists plus the route map under `map_name`.
  ir::RouterConfig config1;
  ir::RouterConfig config2;
  std::string map_name;
  std::vector<std::string> injected;
};

GeneratedRouteMapPair GenerateRouteMapPair(const RouteMapGenOptions& options);

// A random concrete route advertisement drawn from the same constant pools
// the generator uses (so samples exercise the interesting boundaries).
// Returns prefix/communities/tag/metric in an ir-independent form.
struct RandomRoute {
  util::Prefix prefix;
  std::vector<util::Community> communities;
  std::uint32_t tag = 0;
  std::uint32_t metric = 0;
};

std::vector<RandomRoute> SampleRoutes(const GeneratedRouteMapPair& pair,
                                      int count, std::uint64_t seed);

}  // namespace campion::gen
