// campion_trace_diff: the perf/memory regression gate over campion traces.
//
//   campion_trace_diff [options] <baseline.json> <current.json>
//
// Both inputs are campion-format trace files (`campion --trace_out=FILE`,
// schema in docs/trace_format.md). The tool aligns the two span trees by
// their deterministic structure (name + detail, in sibling order — the part
// of a trace that is guaranteed identical across runs and thread counts),
// then prints per-phase wall-time deltas, changed metrics, and memory
// deltas as tables. bench/run_bench.sh runs it after every local bench run
// and CI runs it against the committed baseline traces.
//
// Options:
//   --fail_if_slower_pct=N      Exit 2 when total wall time grew more
//                               than N percent over the baseline.
//   --fail_if_mem_growth_pct=N  Exit 2 when any memory metric (mem.* or
//                               *bytes*) grew more than N percent.
//   --fail_if_unmatched         Exit 2 when any span fails to align.
//   --allow_new_spans=NAMES     Comma list of span names that may appear in
//                               the current trace without a baseline
//                               counterpart (their subtrees ride along).
//                               Escape hatch for landing a change that adds
//                               an instrumented phase before its baseline
//                               is regenerated; baseline-only spans still
//                               fail the gate.
//   --quiet                     Print nothing; gate via exit status only.
//   --help                      Print usage and exit 0.
//
// Exit status: 0 aligned and within thresholds, 2 a regression gate
// tripped, 1 on usage errors or unreadable/invalid input.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_report.h"
#include "util/json.h"
#include "util/text_table.h"

namespace {

using campion::obs::PhaseTotal;
using campion::obs::Span;
using campion::util::JsonValue;

struct Options {
  std::string baseline_path;
  std::string current_path;
  std::optional<double> fail_if_slower_pct;
  std::optional<double> fail_if_mem_growth_pct;
  bool fail_if_unmatched = false;
  std::vector<std::string> allow_new_spans;
  bool quiet = false;
};

struct Trace {
  std::vector<Span> roots;
  std::map<std::string, double> metrics;
};

void PrintUsage(std::ostream& out) {
  out << "usage: campion_trace_diff [options] <baseline.json> "
         "<current.json>\n"
         "  compares two campion-format trace files "
         "(docs/trace_format.md)\n"
         "  --fail_if_slower_pct=N      exit 2 when total wall time grew\n"
         "                              more than N percent\n"
         "  --fail_if_mem_growth_pct=N  exit 2 when a memory metric grew\n"
         "                              more than N percent\n"
         "  --fail_if_unmatched         exit 2 when any span fails to "
         "align\n"
         "  --allow_new_spans=NAMES     comma list of span names allowed to\n"
         "                              be new in the current trace\n"
         "                              (baseline-only spans still fail)\n"
         "  --quiet                     only set the exit status\n"
         "  --help                      print this message and exit 0\n"
         "exit status: 0 ok, 2 regression gate tripped, 1 error\n";
}

bool ParsePercent(const std::string& value, const char* flag,
                  std::optional<double>* out) {
  char* end = nullptr;
  double pct = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || pct < 0) {
    std::cerr << "error: " << flag << " needs a non-negative number, got '"
              << value << "'\n";
    return false;
  }
  *out = pct;
  return true;
}

bool ParseArgs(int argc, char** argv, Options* options, int* exit_code) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::string {
      return arg.substr(std::strlen(flag));
    };
    if (arg == "--help") {
      PrintUsage(std::cout);
      *exit_code = 0;
      return false;
    } else if (arg.rfind("--fail_if_slower_pct=", 0) == 0) {
      if (!ParsePercent(value_of("--fail_if_slower_pct="),
                        "--fail_if_slower_pct",
                        &options->fail_if_slower_pct)) {
        return false;
      }
    } else if (arg.rfind("--fail_if_mem_growth_pct=", 0) == 0) {
      if (!ParsePercent(value_of("--fail_if_mem_growth_pct="),
                        "--fail_if_mem_growth_pct",
                        &options->fail_if_mem_growth_pct)) {
        return false;
      }
    } else if (arg == "--fail_if_unmatched") {
      options->fail_if_unmatched = true;
    } else if (arg.rfind("--allow_new_spans=", 0) == 0) {
      std::string list = value_of("--allow_new_spans=");
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        std::string name = list.substr(
            start,
            comma == std::string::npos ? std::string::npos : comma - start);
        if (!name.empty()) options->allow_new_spans.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (options->allow_new_spans.empty()) {
        std::cerr << "error: --allow_new_spans needs at least one span "
                     "name\n";
        return false;
      }
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown option '" << arg << "'\n";
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return false;
  options->baseline_path = positional[0];
  options->current_path = positional[1];
  return true;
}

// Rebuilds an obs::Span from its trace-file JSON object.
bool SpanFromJson(const JsonValue& value, Span& out) {
  if (!value.IsObject()) return false;
  const JsonValue* name = value.Find("name");
  if (name == nullptr || !name->IsString()) return false;
  out.name = name->string;
  if (const JsonValue* detail = value.Find("detail")) {
    out.detail = detail->string;
  }
  out.start_ns =
      static_cast<std::uint64_t>(value.NumberOr("start_ns", 0.0));
  out.duration_ns =
      static_cast<std::uint64_t>(value.NumberOr("duration_ns", 0.0));
  if (const JsonValue* attrs = value.Find("attrs")) {
    for (const auto& [key, attr] : attrs->object) {
      if (attr.IsNumber()) out.attrs.emplace_back(key, attr.number);
    }
  }
  if (const JsonValue* children = value.Find("children")) {
    for (const JsonValue& child : children->array) {
      Span parsed;
      if (!SpanFromJson(child, parsed)) return false;
      out.children.push_back(std::move(parsed));
    }
  }
  return true;
}

// Loads and validates one campion-format trace file. On failure prints a
// clear message to stderr and returns nullopt.
std::optional<Trace> LoadTrace(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "error: cannot read trace file '" << path << "'\n";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  JsonValue doc;
  std::string parse_error;
  if (!campion::util::ParseJson(buffer.str(), doc, &parse_error)) {
    std::cerr << "error: " << path << ": invalid JSON (" << parse_error
              << ")\n";
    return std::nullopt;
  }
  if (!doc.IsObject() || doc.Find("campion_trace_version") == nullptr) {
    std::cerr << "error: " << path
              << ": not a campion-format trace (missing "
                 "campion_trace_version; chrome-format traces cannot be "
                 "diffed — re-run with --trace_format=campion)\n";
    return std::nullopt;
  }
  Trace trace;
  if (const JsonValue* spans = doc.Find("spans")) {
    for (const JsonValue& span : spans->array) {
      Span parsed;
      if (!SpanFromJson(span, parsed)) {
        std::cerr << "error: " << path << ": malformed span object\n";
        return std::nullopt;
      }
      trace.roots.push_back(std::move(parsed));
    }
  }
  if (const JsonValue* metrics = doc.Find("metrics")) {
    for (const auto& [key, value] : metrics->object) {
      if (value.IsNumber()) trace.metrics[key] = value.number;
    }
  }
  return trace;
}

// ---------------------------------------------------------------------------
// Structural alignment.

struct Alignment {
  std::size_t matched = 0;
  std::size_t baseline_only = 0;
  std::size_t current_only = 0;
  // Current-only spans excused by --allow_new_spans (subtrees included).
  // They count toward neither the unmatched gate nor the match percentage.
  std::size_t current_allowed = 0;

  std::size_t BaselineTotal() const { return matched + baseline_only; }
  double MatchedPct() const {
    std::size_t denom =
        std::max(BaselineTotal(), matched + current_only);
    return denom == 0 ? 100.0
                      : 100.0 * static_cast<double>(matched) /
                            static_cast<double>(denom);
  }
};

std::string SpanKey(const Span& span) {
  return span.name + '\x1f' + span.detail;
}

std::size_t CountSpans(const std::vector<Span>& spans) {
  std::size_t count = spans.size();
  for (const Span& span : spans) count += CountSpans(span.children);
  return count;
}

// Matches two sibling lists in order: each baseline span takes the first
// not-yet-matched current span with the same (name, detail) key, and the
// pair's subtrees align recursively. Two traces of the same comparison
// have identical deterministic structure, so everything pairs positionally;
// divergent traces degrade to counting the unmatched subtrees.
void AlignSiblings(const std::vector<Span>& baseline,
                   const std::vector<Span>& current,
                   const std::vector<std::string>& allow_new,
                   Alignment& alignment) {
  std::map<std::string, std::vector<std::size_t>> current_by_key;
  for (std::size_t i = 0; i < current.size(); ++i) {
    current_by_key[SpanKey(current[i])].push_back(i);
  }
  std::vector<bool> current_matched(current.size(), false);
  std::map<std::string, std::size_t> cursor;
  for (const Span& base_span : baseline) {
    const std::string key = SpanKey(base_span);
    auto it = current_by_key.find(key);
    std::size_t& next = cursor[key];
    if (it == current_by_key.end() || next >= it->second.size()) {
      alignment.baseline_only += 1 + CountSpans(base_span.children);
      continue;
    }
    std::size_t current_index = it->second[next++];
    current_matched[current_index] = true;
    alignment.matched += 1;
    AlignSiblings(base_span.children, current[current_index].children,
                  allow_new, alignment);
  }
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (current_matched[i]) continue;
    std::size_t subtree = 1 + CountSpans(current[i].children);
    if (std::find(allow_new.begin(), allow_new.end(), current[i].name) !=
        allow_new.end()) {
      alignment.current_allowed += subtree;
    } else {
      alignment.current_only += subtree;
    }
  }
}

// ---------------------------------------------------------------------------
// Delta rendering.

std::string FormatMs(std::uint64_t ns) {
  char buffer[32];
  snprintf(buffer, sizeof(buffer), "%.3f", static_cast<double>(ns) / 1e6);
  return buffer;
}

std::string FormatPct(double base, double current) {
  if (base == 0.0) return current == 0.0 ? "+0.0%" : "+inf%";
  char buffer[32];
  snprintf(buffer, sizeof(buffer), "%+.1f%%",
           100.0 * (current - base) / base);
  return buffer;
}

// Growth over the baseline in percent. A value appearing from a zero (or
// absent) baseline is infinite growth — it must trip any finite gate, not
// silently read as 0%: a zero-wall baseline usually means the baseline
// trace is truncated or doctored, the one case a regression gate exists
// to catch.
double GrowthPct(double base, double current) {
  if (base <= 0.0) {
    return current > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return 100.0 * (current - base) / base;
}

bool IsMemoryMetric(const std::string& name) {
  return name.rfind("mem.", 0) == 0 ||
         name.find("bytes") != std::string::npos;
}

std::uint64_t TotalWallNs(const std::vector<Span>& roots) {
  std::uint64_t total = 0;
  for (const Span& root : roots) total += root.duration_ns;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  int exit_code = 1;
  if (!ParseArgs(argc, argv, &options, &exit_code)) {
    if (exit_code == 0) return 0;
    PrintUsage(std::cerr);
    return 1;
  }

  std::optional<Trace> baseline = LoadTrace(options.baseline_path);
  if (!baseline.has_value()) return 1;
  std::optional<Trace> current = LoadTrace(options.current_path);
  if (!current.has_value()) return 1;

  // Structural alignment over the whole forest.
  Alignment alignment;
  AlignSiblings(baseline->roots, current->roots, options.allow_new_spans,
                alignment);

  // Per-phase wall-time deltas, aggregated by span name like --stats.
  std::vector<PhaseTotal> base_phases =
      campion::obs::PhaseTotals(baseline->roots);
  std::vector<PhaseTotal> cur_phases =
      campion::obs::PhaseTotals(current->roots);
  auto phase_named = [](const std::vector<PhaseTotal>& phases,
                        const std::string& name) -> const PhaseTotal* {
    for (const PhaseTotal& phase : phases) {
      if (phase.name == name) return &phase;
    }
    return nullptr;
  };

  std::uint64_t base_wall = TotalWallNs(baseline->roots);
  std::uint64_t cur_wall = TotalWallNs(current->roots);

  if (!options.quiet) {
    char pct[32];
    snprintf(pct, sizeof(pct), "%.1f", alignment.MatchedPct());
    std::cout << "Trace alignment: " << alignment.matched << " span(s) "
              << "matched (" << pct << "%), " << alignment.baseline_only
              << " baseline-only, " << alignment.current_only
              << " current-only";
    if (alignment.current_allowed > 0) {
      std::cout << ", " << alignment.current_allowed
                << " new-but-allowed (--allow_new_spans)";
    }
    std::cout << "\n\n";

    std::cout << "Phase wall-time deltas (aggregated by span name):\n";
    campion::util::TextTable phases(
        {"Phase", "Count", "Base (ms)", "Cur (ms)", "Delta"});
    for (const PhaseTotal& base_phase : base_phases) {
      const PhaseTotal* cur_phase = phase_named(cur_phases, base_phase.name);
      std::uint64_t cur_ns = cur_phase == nullptr ? 0 : cur_phase->total_ns;
      std::uint64_t cur_count = cur_phase == nullptr ? 0 : cur_phase->count;
      phases.AddRow({base_phase.name,
                     std::to_string(base_phase.count) + " -> " +
                         std::to_string(cur_count),
                     FormatMs(base_phase.total_ns), FormatMs(cur_ns),
                     FormatPct(static_cast<double>(base_phase.total_ns),
                               static_cast<double>(cur_ns))});
    }
    for (const PhaseTotal& cur_phase : cur_phases) {
      if (phase_named(base_phases, cur_phase.name) != nullptr) continue;
      phases.AddRow({cur_phase.name, "0 -> " + std::to_string(cur_phase.count),
                     "0.000", FormatMs(cur_phase.total_ns), "new"});
    }
    phases.AddRow({"(total wall)", "", FormatMs(base_wall),
                   FormatMs(cur_wall),
                   FormatPct(static_cast<double>(base_wall),
                             static_cast<double>(cur_wall))});
    std::cout << phases.Render();

    // Metric deltas: changed values only, memory metrics always (they are
    // what --fail_if_mem_growth_pct gates on).
    campion::util::TextTable metrics({"Metric", "Base", "Cur", "Delta"});
    std::size_t unchanged = 0;
    std::map<std::string, double> all_keys = baseline->metrics;
    all_keys.insert(current->metrics.begin(), current->metrics.end());
    for (const auto& [name, unused] : all_keys) {
      auto base_it = baseline->metrics.find(name);
      auto cur_it = current->metrics.find(name);
      double base_value =
          base_it == baseline->metrics.end() ? 0.0 : base_it->second;
      double cur_value =
          cur_it == current->metrics.end() ? 0.0 : cur_it->second;
      if (base_value == cur_value && !IsMemoryMetric(name)) {
        ++unchanged;
        continue;
      }
      metrics.AddRow({name, campion::util::JsonNumber(base_value),
                      campion::util::JsonNumber(cur_value),
                      FormatPct(base_value, cur_value)});
    }
    std::cout << "\nMetric deltas (changed values and memory metrics; "
              << unchanged << " unchanged hidden):\n"
              << metrics.Render();
  }

  // Regression gates.
  std::vector<std::string> tripped;
  if (options.fail_if_unmatched &&
      alignment.baseline_only + alignment.current_only > 0) {
    tripped.push_back(
        "unaligned spans: " + std::to_string(alignment.baseline_only) +
        " baseline-only, " + std::to_string(alignment.current_only) +
        " current-only");
  }
  if (options.fail_if_slower_pct.has_value()) {
    double growth = GrowthPct(static_cast<double>(base_wall),
                              static_cast<double>(cur_wall));
    if (growth > *options.fail_if_slower_pct) {
      char buffer[192];
      if (std::isinf(growth)) {
        snprintf(buffer, sizeof(buffer),
                 "total wall time grew from a zero-wall baseline to %s ms "
                 "(limit %.1f%%); the baseline trace looks truncated or "
                 "doctored",
                 FormatMs(cur_wall).c_str(), *options.fail_if_slower_pct);
      } else {
        snprintf(buffer, sizeof(buffer),
                 "total wall time grew %.1f%% (limit %.1f%%)", growth,
                 *options.fail_if_slower_pct);
      }
      tripped.push_back(buffer);
    }
  }
  if (options.fail_if_mem_growth_pct.has_value()) {
    for (const auto& [name, base_value] : baseline->metrics) {
      if (!IsMemoryMetric(name)) continue;
      auto cur_it = current->metrics.find(name);
      if (cur_it == current->metrics.end()) continue;
      double growth = GrowthPct(base_value, cur_it->second);
      if (growth > *options.fail_if_mem_growth_pct) {
        char buffer[192];
        if (std::isinf(growth)) {
          snprintf(buffer, sizeof(buffer),
                   "%s grew from a zero baseline to %s (limit %.1f%%)",
                   name.c_str(),
                   campion::util::JsonNumber(cur_it->second).c_str(),
                   *options.fail_if_mem_growth_pct);
        } else {
          snprintf(buffer, sizeof(buffer), "%s grew %.1f%% (limit %.1f%%)",
                   name.c_str(), growth, *options.fail_if_mem_growth_pct);
        }
        tripped.push_back(buffer);
      }
    }
  }

  if (!tripped.empty()) {
    for (const std::string& reason : tripped) {
      std::cerr << "regression: " << reason << "\n";
    }
    return 2;
  }
  return 0;
}
