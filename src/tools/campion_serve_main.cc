// campion_serve: the resident comparison daemon. Accepts diff requests
// over HTTP, amortizes the encoding-template build / one-time sift across
// requests via a cross-request cache, and bounds resident BDD memory with
// mark-and-compact GC. docs/daemon.md is the authoritative API reference.
//
//   campion_serve [options]
//
// Options:
//   --port=N                 Listen port (default 8080; 0 = ephemeral,
//                            printed on startup).
//   --bind=ADDR              Bind address (default 127.0.0.1).
//   --threads=N              Worker threads per diff request
//                            (0 = hardware concurrency, 1 = serial).
//   --http_threads=N         Connection-handling threads (default 4).
//   --encoding_template=on|off  Seed pair managers from a shared template
//                            (default on; reports byte-identical).
//   --cache=on|off           Cross-request template cache (default on).
//   --cache_entries=N        Max cached templates (0 = unlimited).
//   --result_cache=on|off    Incremental result cache keyed by structural
//                            fingerprints (default on).
//   --result_cache_mb=N      Cached response bytes before LRU eviction
//                            (default 64).
//   --result_cache_entries=N Max cached results (0 = unlimited).
//   --reorder=off|sift|group_sift  One-time template sift per cache entry
//                            (default sift: the daemon amortizes it).
//   --reorder_trigger_ratio=R  Pair-manager auto-sift trigger (min 1.1).
//   --gc=on|off              Template compaction + resident-byte watermark
//                            (default on).
//   --gc_watermark_mb=N      Resident template bytes before LRU eviction
//                            (default 256).
//   --flight_recorder=on|off Per-request flight recorder behind
//                            /debug/requests (default on).
//   --flight_recorder_entries=N  Ring capacity: last N diff executions
//                            (default 64).
//   --help                   Print usage and exit 0.
//
// Shutdown: SIGTERM or SIGINT stops accepting, drains in-flight requests,
// and exits 0 (the CI smoke job asserts this).
//
// Exit status: 0 clean shutdown, 1 on usage or bind failures.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "server/http.h"
#include "server/service.h"

namespace {

struct Options {
  int port = 8080;
  std::string bind = "127.0.0.1";
  unsigned http_threads = 4;
  campion::server::ServiceOptions service;
};

void PrintUsage(std::ostream& out) {
  out << "usage: campion_serve [options]\n"
         "  --port=N        listen port (default 8080; 0 = ephemeral,\n"
         "                  printed on startup)\n"
         "  --bind=ADDR     bind address (default 127.0.0.1)\n"
         "  --threads=N     worker threads per diff request\n"
         "                  (0 = hardware concurrency, 1 = serial)\n"
         "  --http_threads=N\n"
         "                  connection-handling threads (default 4)\n"
         "  --encoding_template=on|off\n"
         "                  seed per-pair BDD managers from a shared\n"
         "                  read-only encoding template (default on; the\n"
         "                  report is byte-identical either way)\n"
         "  --cache=on|off  cross-request template cache keyed by the\n"
         "                  canonical structural keys (default on)\n"
         "  --cache_entries=N\n"
         "                  max cached templates (0 = unlimited)\n"
         "  --result_cache=on|off\n"
         "                  incremental result cache: rendered responses\n"
         "                  keyed by the full canonical structure of both\n"
         "                  configs, so re-diffing an unchanged pair is a\n"
         "                  byte-identical replay (default on)\n"
         "  --result_cache_mb=N\n"
         "                  cached response bytes before least-recently-\n"
         "                  used eviction (default 64)\n"
         "  --result_cache_entries=N\n"
         "                  max cached results (0 = unlimited)\n"
         "  --reorder=off|sift|group_sift\n"
         "                  one-time template sift per cache entry\n"
         "                  (default sift; the report is byte-identical\n"
         "                  at every mode)\n"
         "  --reorder_trigger_ratio=R\n"
         "                  auto-sift a pair manager when its live node\n"
         "                  count grows past R x the count at the last\n"
         "                  sift (default 2.0, min 1.1)\n"
         "  --gc=on|off     BDD arena mark-and-compact GC for cached\n"
         "                  templates plus the resident-byte watermark\n"
         "                  (default on)\n"
         "  --gc_watermark_mb=N\n"
         "                  resident template bytes before least-recently-\n"
         "                  used cache eviction (default 256)\n"
         "  --flight_recorder=on|off\n"
         "                  record the last N diff executions (wall time,\n"
         "                  phase breakdown, cache disposition) for\n"
         "                  GET /debug/requests, span trees retained for\n"
         "                  the slowest 8 (default on)\n"
         "  --flight_recorder_entries=N\n"
         "                  flight-recorder ring capacity (default 64)\n"
         "  --help          print this message and exit 0\n"
         "exit status: 0 clean shutdown, 1 error\n";
}

int Usage() {
  PrintUsage(std::cerr);
  return 1;
}

bool ParseOnOff(const std::string& value, const char* flag, bool* out) {
  if (value == "on") {
    *out = true;
    return true;
  }
  if (value == "off") {
    *out = false;
    return true;
  }
  std::cerr << "error: " << flag << " expects on or off, got '" << value
            << "'\n";
  return false;
}

bool ParseUnsigned(const std::string& value, const char* flag,
                   unsigned long* out) {
  char* end = nullptr;
  *out = std::strtoul(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0') {
    std::cerr << "error: invalid value for " << flag << ": '" << value
              << "'\n";
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Options* options, int* exit_code) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::string {
      return arg.substr(std::strlen(flag));
    };
    unsigned long number = 0;
    if (arg == "--help") {
      PrintUsage(std::cout);
      *exit_code = 0;
      return false;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!ParseUnsigned(value_of("--port="), "--port", &number)) return false;
      if (number > 65535) {
        std::cerr << "error: port out of range\n";
        return false;
      }
      options->port = static_cast<int>(number);
    } else if (arg.rfind("--bind=", 0) == 0) {
      options->bind = value_of("--bind=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!ParseUnsigned(value_of("--threads="), "--threads", &number)) {
        return false;
      }
      options->service.diff.num_threads = static_cast<unsigned>(number);
    } else if (arg.rfind("--http_threads=", 0) == 0) {
      if (!ParseUnsigned(value_of("--http_threads="), "--http_threads",
                         &number) ||
          number == 0) {
        std::cerr << "error: --http_threads must be >= 1\n";
        return false;
      }
      options->http_threads = static_cast<unsigned>(number);
    } else if (arg.rfind("--encoding_template=", 0) == 0) {
      if (!ParseOnOff(value_of("--encoding_template="), "--encoding_template",
                      &options->service.diff.use_encoding_template)) {
        return false;
      }
    } else if (arg.rfind("--cache=", 0) == 0) {
      if (!ParseOnOff(value_of("--cache="), "--cache",
                      &options->service.cache)) {
        return false;
      }
    } else if (arg.rfind("--cache_entries=", 0) == 0) {
      if (!ParseUnsigned(value_of("--cache_entries="), "--cache_entries",
                         &number)) {
        return false;
      }
      options->service.cache_max_entries = number;
    } else if (arg.rfind("--result_cache=", 0) == 0) {
      if (!ParseOnOff(value_of("--result_cache="), "--result_cache",
                      &options->service.result_cache)) {
        return false;
      }
    } else if (arg.rfind("--result_cache_mb=", 0) == 0) {
      if (!ParseUnsigned(value_of("--result_cache_mb="), "--result_cache_mb",
                         &number)) {
        return false;
      }
      options->service.result_cache_watermark_bytes = number * 1024 * 1024;
    } else if (arg.rfind("--result_cache_entries=", 0) == 0) {
      if (!ParseUnsigned(value_of("--result_cache_entries="),
                         "--result_cache_entries", &number)) {
        return false;
      }
      options->service.result_cache_max_entries = number;
    } else if (arg.rfind("--reorder=", 0) == 0) {
      const std::string value = value_of("--reorder=");
      if (value == "off") {
        options->service.diff.reorder =
            campion::core::DiffOptions::ReorderMode::kOff;
      } else if (value == "sift") {
        options->service.diff.reorder =
            campion::core::DiffOptions::ReorderMode::kSift;
      } else if (value == "group_sift") {
        options->service.diff.reorder =
            campion::core::DiffOptions::ReorderMode::kGroupSift;
      } else {
        std::cerr << "error: unknown reorder mode '" << value
                  << "' (expected off, sift, or group_sift)\n";
        return false;
      }
    } else if (arg.rfind("--reorder_trigger_ratio=", 0) == 0) {
      const std::string value = value_of("--reorder_trigger_ratio=");
      char* end = nullptr;
      const double ratio = std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' || ratio < 1.1) {
        std::cerr << "error: invalid reorder trigger ratio '" << value
                  << "' (min 1.1)\n";
        return false;
      }
      options->service.diff.reorder_trigger_ratio = ratio;
    } else if (arg.rfind("--gc=", 0) == 0) {
      if (!ParseOnOff(value_of("--gc="), "--gc", &options->service.gc)) {
        return false;
      }
    } else if (arg.rfind("--gc_watermark_mb=", 0) == 0) {
      if (!ParseUnsigned(value_of("--gc_watermark_mb="), "--gc_watermark_mb",
                         &number)) {
        return false;
      }
      options->service.gc_watermark_bytes = number * 1024 * 1024;
    } else if (arg.rfind("--flight_recorder=", 0) == 0) {
      if (!ParseOnOff(value_of("--flight_recorder="), "--flight_recorder",
                      &options->service.flight_recorder)) {
        return false;
      }
    } else if (arg.rfind("--flight_recorder_entries=", 0) == 0) {
      if (!ParseUnsigned(value_of("--flight_recorder_entries="),
                         "--flight_recorder_entries", &number) ||
          number == 0) {
        std::cerr << "error: --flight_recorder_entries must be >= 1\n";
        return false;
      }
      options->service.flight_recorder_entries = number;
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

volatile std::sig_atomic_t g_shutdown = 0;
int g_wakeup_pipe[2] = {-1, -1};

void HandleSignal(int) {
  g_shutdown = 1;
  // Self-pipe: the only async-signal-safe way to wake the main thread.
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_wakeup_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  int exit_code = 1;
  if (!ParseArgs(argc, argv, &options, &exit_code)) {
    return exit_code == 0 ? 0 : Usage();
  }

  if (::pipe(g_wakeup_pipe) != 0) {
    std::cerr << "error: pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  campion::server::DiffService service(options.service);
  campion::server::HttpServer server(
      options.bind, options.port,
      [&service](const campion::server::HttpRequest& request) {
        return service.Handle(request);
      },
      options.http_threads);
  service.SetKeepaliveReuses([&server] { return server.keepalive_reuses(); });
  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "error: cannot listen on " << options.bind << ":"
              << options.port << ": " << error << "\n";
    return 1;
  }
  std::cout << "campion_serve listening on http://" << options.bind << ":"
            << server.port() << "/\n"
            << std::flush;

  // Block until a shutdown signal lands on the self-pipe.
  char byte;
  while (!g_shutdown) {
    if (::read(g_wakeup_pipe[0], &byte, 1) > 0) break;
    if (errno != EINTR) break;
  }
  std::cout << "campion_serve shutting down\n" << std::flush;
  server.Stop();
  return 0;
}
