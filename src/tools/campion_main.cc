// The campion command-line tool: compare two router configurations and
// report every behavioral difference, localized to the affected header
// space and the responsible configuration lines.
//
//   campion [options] <config1> <config2>
//
// Options (docs/cli.md is the authoritative reference):
//   --vendor1=cisco|juniper|auto   Format of the first config (default auto)
//   --vendor2=cisco|juniper|auto   Format of the second config
//   --checks=LIST                  Comma list of checks to run; default all.
//                                  (route-maps, acls, static, connected,
//                                   ospf, bgp, admin)
//   --route-map=NAME               Compare only the named route map pair.
//   --acl=NAME                     Compare only the named ACL pair.
//   --format=text|json             Output format (default text).
//   --threads=N                    Worker threads for per-pair diffs
//                                  (0 = hardware concurrency, 1 = serial).
//   --encoding_template=on|off     Seed per-pair BDD managers from a shared
//                                  read-only encoding template (default on;
//                                  output is byte-identical either way).
//   --reorder=off|sift|group_sift  Dynamic BDD variable reordering (Rudell
//                                  sifting; group_sift moves declared field
//                                  blocks as units). Default off; output is
//                                  byte-identical at every mode.
//   --reorder_trigger_ratio=R      Auto-sift a pair manager when its live
//                                  node count grows past R x the count at
//                                  the last sift (default 2.0, min 1.1).
//   --trace_out=FILE               Write a JSON trace (phase spans + metrics,
//                                  see docs/trace_format.md) to FILE.
//   --trace_format=campion|chrome  Trace file format: the versioned campion
//                                  span tree (default) or Chrome Trace Event
//                                  JSON for Perfetto / chrome://tracing.
//   --stats                        Print a phase-timing and metrics summary
//                                  to stderr after the report.
//   --batch                        Treat the two arguments as directories and
//                                  compare files with matching stems pairwise.
//   --quiet                        Only set the exit status.
//   --help                         Print usage and exit 0.
//
// Exit status: 0 when behaviorally equivalent, 2 when differences were
// found, 1 on usage or parse failures.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/config_diff.h"
#include "core/json_report.h"
#include "frontend/loader.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_report.h"

namespace {

struct Options {
  std::string path1;
  std::string path2;
  campion::ir::Vendor vendor1 = campion::ir::Vendor::kUnknown;
  campion::ir::Vendor vendor2 = campion::ir::Vendor::kUnknown;
  campion::core::DiffOptions checks;
  std::string route_map;
  std::string acl;
  std::string trace_out;  // Empty = no trace file.
  bool trace_chrome = false;  // --trace_format=chrome
  bool stats = false;
  bool json = false;
  bool quiet = false;
  // Batch mode: the two positional arguments are directories; files with
  // matching stems are compared pairwise (the §5.1 "check all backup
  // pairs" workflow).
  bool batch = false;
};

campion::ir::Vendor ParseVendor(const std::string& value) {
  if (value == "cisco") return campion::ir::Vendor::kCisco;
  if (value == "juniper") return campion::ir::Vendor::kJuniper;
  return campion::ir::Vendor::kUnknown;
}

bool ParseChecks(const std::string& list, campion::core::DiffOptions* checks) {
  // Reset only the check toggles: --checks composes with the other
  // DiffOptions flags (--threads, --encoding_template) in any order.
  checks->check_route_maps = false;
  checks->check_acls = false;
  checks->check_static_routes = false;
  checks->check_connected_routes = false;
  checks->check_ospf = false;
  checks->check_bgp_properties = false;
  checks->check_admin_distances = false;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (item == "route-maps") {
      checks->check_route_maps = true;
    } else if (item == "acls") {
      checks->check_acls = true;
    } else if (item == "static") {
      checks->check_static_routes = true;
    } else if (item == "connected") {
      checks->check_connected_routes = true;
    } else if (item == "ospf") {
      checks->check_ospf = true;
    } else if (item == "bgp") {
      checks->check_bgp_properties = true;
    } else if (item == "admin") {
      checks->check_admin_distances = true;
    } else if (!item.empty()) {
      std::cerr << "error: unknown check '" << item << "'\n";
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

void PrintUsage(std::ostream& out) {
  out << "usage: campion [options] <config1> <config2>\n"
         "  --vendor1=cisco|juniper|auto  format of config1 (default auto)\n"
         "  --vendor2=cisco|juniper|auto  format of config2\n"
         "  --checks=LIST   comma list: route-maps,acls,static,connected,\n"
         "                  ospf,bgp,admin (default: all)\n"
         "  --route-map=N   compare only the named route map pair\n"
         "  --acl=N         compare only the named ACL pair\n"
         "  --format=text|json\n"
         "  --threads=N     worker threads for per-pair diffs\n"
         "                  (0 = hardware concurrency, 1 = serial)\n"
         "  --encoding_template=on|off\n"
         "                  seed per-pair BDD managers from a shared\n"
         "                  read-only encoding template (default on; the\n"
         "                  report is byte-identical either way)\n"
         "  --reorder=off|sift|group_sift\n"
         "                  dynamic BDD variable reordering (Rudell\n"
         "                  sifting; group_sift moves declared field\n"
         "                  blocks as units; default off; the report is\n"
         "                  byte-identical at every mode)\n"
         "  --reorder_trigger_ratio=R\n"
         "                  auto-sift a pair manager when its live node\n"
         "                  count grows past R x the count at the last\n"
         "                  sift (default 2.0, min 1.1)\n"
         "  --trace_out=F   write a JSON trace of the run (phase spans +\n"
         "                  metrics, docs/trace_format.md) to file F\n"
         "  --trace_format=campion|chrome\n"
         "                  trace file format: campion span tree (default)\n"
         "                  or Chrome Trace Event JSON (Perfetto)\n"
         "  --stats         print a phase-timing and metrics summary to\n"
         "                  stderr after the report\n"
         "  --batch         treat the two arguments as directories and\n"
         "                  compare files with matching stems pairwise\n"
         "  --quiet         only set the exit status\n"
         "  --help          print this message and exit 0\n"
         "exit status: 0 equivalent, 2 differences found, 1 error\n";
}

int Usage() {
  PrintUsage(std::cerr);
  return 1;
}

// Batch mode: pair files across two directories by stem (filename without
// extension) and compare each pair. Returns the process exit status.
int RunBatch(const Options& options) {
  namespace fs = std::filesystem;
  auto stems = [](const std::string& dir) {
    std::vector<std::pair<std::string, fs::path>> out;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      out.emplace_back(entry.path().stem().string(), entry.path());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  std::vector<std::pair<std::string, fs::path>> left;
  std::vector<std::pair<std::string, fs::path>> right;
  try {
    left = stems(options.path1);
    right = stems(options.path2);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }

  int compared = 0;
  int differing = 0;
  int failures = 0;
  for (const auto& [stem, path] : left) {
    auto match = std::find_if(right.begin(), right.end(),
                              [&](const auto& r) { return r.first == stem; });
    if (match == right.end()) {
      std::cerr << "warning: no counterpart for " << path << "\n";
      continue;
    }
    ++compared;
    try {
      auto loaded1 = campion::frontend::LoadConfigFile(path.string(),
                                                       options.vendor1);
      auto loaded2 = campion::frontend::LoadConfigFile(
          match->second.string(), options.vendor2);
      campion::core::DiffReport report = campion::core::ConfigDiff(
          loaded1.config, loaded2.config, options.checks);
      if (report.Equivalent()) {
        if (!options.quiet) std::cout << stem << ": equivalent\n";
      } else {
        ++differing;
        if (!options.quiet) {
          std::cout << stem << ": " << report.entries.size()
                    << " reported item(s)\n";
          std::cout << report.Render();
        }
      }
    } catch (const std::exception& error) {
      ++failures;
      std::cerr << "error: " << stem << ": " << error.what() << "\n";
    }
  }
  if (!options.quiet) {
    std::cout << compared << " pair(s) compared, " << differing
              << " with differences, " << failures << " failed to load\n";
  }
  if (failures > 0) return 1;
  return differing == 0 ? 0 : 2;
}

bool ParseArgs(int argc, char** argv, Options* options, int* exit_code) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::string {
      return arg.substr(std::strlen(flag));
    };
    if (arg == "--help") {
      PrintUsage(std::cout);
      *exit_code = 0;
      return false;
    } else if (arg.rfind("--vendor1=", 0) == 0) {
      options->vendor1 = ParseVendor(value_of("--vendor1="));
    } else if (arg.rfind("--vendor2=", 0) == 0) {
      options->vendor2 = ParseVendor(value_of("--vendor2="));
    } else if (arg.rfind("--checks=", 0) == 0) {
      if (!ParseChecks(value_of("--checks="), &options->checks)) return false;
    } else if (arg.rfind("--route-map=", 0) == 0) {
      options->route_map = value_of("--route-map=");
    } else if (arg.rfind("--acl=", 0) == 0) {
      options->acl = value_of("--acl=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      std::string value = value_of("--threads=");
      char* end = nullptr;
      unsigned long threads = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0') {
        std::cerr << "error: invalid thread count '" << value << "'\n";
        return false;
      }
      options->checks.num_threads = static_cast<unsigned>(threads);
    } else if (arg.rfind("--encoding_template=", 0) == 0) {
      std::string value = value_of("--encoding_template=");
      if (value == "on") {
        options->checks.use_encoding_template = true;
      } else if (value == "off") {
        options->checks.use_encoding_template = false;
      } else {
        std::cerr << "error: unknown encoding_template mode '" << value
                  << "' (expected on or off)\n";
        return false;
      }
    } else if (arg.rfind("--reorder=", 0) == 0) {
      std::string value = value_of("--reorder=");
      if (value == "off") {
        options->checks.reorder = campion::core::DiffOptions::ReorderMode::kOff;
      } else if (value == "sift") {
        options->checks.reorder =
            campion::core::DiffOptions::ReorderMode::kSift;
      } else if (value == "group_sift") {
        options->checks.reorder =
            campion::core::DiffOptions::ReorderMode::kGroupSift;
      } else {
        std::cerr << "error: unknown reorder mode '" << value
                  << "' (expected off, sift, or group_sift)\n";
        return false;
      }
    } else if (arg.rfind("--reorder_trigger_ratio=", 0) == 0) {
      std::string value = value_of("--reorder_trigger_ratio=");
      char* end = nullptr;
      double ratio = std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' || ratio < 1.1) {
        std::cerr << "error: invalid reorder trigger ratio '" << value
                  << "' (min 1.1)\n";
        return false;
      }
      options->checks.reorder_trigger_ratio = ratio;
    } else if (arg.rfind("--trace_out=", 0) == 0) {
      options->trace_out = value_of("--trace_out=");
      if (options->trace_out.empty()) {
        std::cerr << "error: --trace_out needs a file path\n";
        return false;
      }
    } else if (arg.rfind("--trace_format=", 0) == 0) {
      std::string format = value_of("--trace_format=");
      if (format == "chrome") {
        options->trace_chrome = true;
      } else if (format != "campion") {
        std::cerr << "error: unknown trace format '" << format
                  << "' (expected campion or chrome)\n";
        return false;
      }
    } else if (arg == "--stats") {
      options->stats = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      std::string format = value_of("--format=");
      if (format == "json") {
        options->json = true;
      } else if (format != "text") {
        std::cerr << "error: unknown format '" << format << "'\n";
        return false;
      }
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "--batch") {
      options->batch = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown option '" << arg << "'\n";
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return false;
  options->path1 = positional[0];
  options->path2 = positional[1];
  return true;
}

// Emits the collected trace (file and/or stderr summary). The report has
// already been written to stdout, so tracing can never perturb it. Returns
// false when the trace file cannot be written.
bool EmitObservability(const Options& options) {
  if (!campion::obs::Enabled()) return true;
  std::vector<campion::obs::Span> spans = campion::obs::TakeThreadSpans();
  auto metrics = campion::obs::ProcessMetrics().Snapshot();
  if (options.stats) {
    std::cerr << campion::obs::RenderStatsSummary(spans, metrics);
  }
  if (!options.trace_out.empty()) {
    std::ofstream file(options.trace_out);
    if (!file) {
      std::cerr << "error: cannot open trace output file '"
                << options.trace_out << "' for writing\n";
      return false;
    }
    file << (options.trace_chrome
                 ? campion::obs::TraceToChromeJson(spans, metrics)
                 : campion::obs::TraceToJson(spans, metrics));
    file.flush();
    if (!file) {
      std::cerr << "error: failed writing trace output file '"
                << options.trace_out << "'\n";
      return false;
    }
  }
  return true;
}

int Run(const Options& options) {
  if (options.batch) return RunBatch(options);

  campion::frontend::LoadResult loaded1;
  campion::frontend::LoadResult loaded2;
  try {
    loaded1 = campion::frontend::LoadConfigFile(options.path1,
                                                options.vendor1);
    loaded2 = campion::frontend::LoadConfigFile(options.path2,
                                                options.vendor2);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  if (!options.quiet) {
    for (const auto& d : loaded1.diagnostics) std::cerr << "warning: " << d << "\n";
    for (const auto& d : loaded2.diagnostics) std::cerr << "warning: " << d << "\n";
  }

  // Single-component modes.
  if (!options.route_map.empty()) {
    auto diffs = campion::core::DiffRouteMapPair(
        loaded1.config, options.route_map, loaded2.config, options.route_map);
    if (!options.quiet) {
      for (const auto& d : diffs) std::cout << d.table << "\n";
      std::cout << diffs.size() << " difference(s)\n";
    }
    return diffs.empty() ? 0 : 2;
  }
  if (!options.acl.empty()) {
    auto diffs = campion::core::DiffAclPair(loaded1.config, loaded2.config,
                                            options.acl);
    if (!options.quiet) {
      for (const auto& d : diffs) std::cout << d.table << "\n";
      std::cout << diffs.size() << " difference(s)\n";
    }
    return diffs.empty() ? 0 : 2;
  }

  campion::core::DiffReport report =
      campion::core::ConfigDiff(loaded1.config, loaded2.config, options.checks);
  if (!options.quiet) {
    if (options.json) {
      std::cout << campion::core::ReportToJson(report,
                                               loaded1.config.hostname,
                                               loaded2.config.hostname);
    } else {
      std::cout << report.Render();
    }
  }
  return report.Equivalent() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  int exit_code = 1;
  if (!ParseArgs(argc, argv, &options, &exit_code)) {
    return exit_code == 0 ? 0 : Usage();
  }
  if (!options.trace_out.empty() || options.stats) {
    campion::obs::SetEnabled(true);
  }
  int status = Run(options);
  if (!EmitObservability(options)) return 1;
  return status;
}
