#include "server/service.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <utility>
#include <vector>

#include "core/json_report.h"
#include "encode/fingerprint.h"
#include "frontend/loader.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_report.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace campion::server {

namespace {

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\":\"" + util::JsonEscape(message) + "\"}\n";
  return response;
}

HttpResponse JsonOk(const std::string& body) {
  HttpResponse response;
  response.content_type = "application/json";
  response.body = body;
  return response;
}

ir::Vendor ParseVendor(const std::string& value) {
  if (value == "cisco") return ir::Vendor::kCisco;
  if (value == "juniper") return ir::Vendor::kJuniper;
  return ir::Vendor::kUnknown;
}

bool ValidVendor(const std::string& value) {
  return value.empty() || value == "auto" || value == "cisco" ||
         value == "juniper";
}

// Same grammar as the CLI's --checks flag; false on an unknown item.
bool ParseChecks(const std::string& list, core::DiffOptions* checks,
                 std::string* error) {
  checks->check_route_maps = false;
  checks->check_acls = false;
  checks->check_static_routes = false;
  checks->check_connected_routes = false;
  checks->check_ospf = false;
  checks->check_bgp_properties = false;
  checks->check_admin_distances = false;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (item == "route-maps") {
      checks->check_route_maps = true;
    } else if (item == "acls") {
      checks->check_acls = true;
    } else if (item == "static") {
      checks->check_static_routes = true;
    } else if (item == "connected") {
      checks->check_connected_routes = true;
    } else if (item == "ospf") {
      checks->check_ospf = true;
    } else if (item == "bgp") {
      checks->check_bgp_properties = true;
    } else if (item == "admin") {
      checks->check_admin_distances = true;
    } else if (!item.empty()) {
      *error = "unknown check '" + item + "'";
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

bool ValidSessionName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

// Watermark-style obs metrics keep their max across requests when folded
// into the daemon totals; everything else is a counter and sums.
bool IsWatermarkMetric(const std::string& name) {
  return name.find("peak") != std::string::npos ||
         name.find("load_factor") != std::string::npos ||
         name.find("resident_bytes") != std::string::npos;
}

// Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*. The repo's
// dotted names map by '.' -> '_' (everything else in use is already
// legal); the exposition prefixes "campion_".
std::string PrometheusName(const std::string& name) {
  std::string out = "campion_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

// One histogram family in Prometheus text format: cumulative _bucket
// lines for the non-empty buckets (plus +Inf), then _sum and _count.
// `label` is one 'key="value"' pair or empty; it rides in front of le, so
// a grep for `_bucket{le=` selects exactly the unlabeled aggregate family.
void AppendPrometheusHistogram(std::ostringstream& out,
                               const std::string& name,
                               const std::string& label,
                               const obs::HistogramSnapshot& snapshot) {
  const std::string le_open = label.empty() ? "{le=\"" : "{" + label + ",le=\"";
  const std::string plain = label.empty() ? "" : "{" + label + "}";
  std::uint64_t cumulative = 0;
  for (int i = 0; i < obs::HistogramSnapshot::kBucketCount; ++i) {
    const std::uint64_t bucket = snapshot.counts[static_cast<std::size_t>(i)];
    if (bucket == 0) continue;
    cumulative += bucket;
    out << name << "_bucket" << le_open
        << obs::LatencyHistogram::BucketUpperNs(i) << "\"} " << cumulative
        << '\n';
  }
  out << name << "_bucket" << le_open << "+Inf\"} " << snapshot.count << '\n';
  out << name << "_sum" << plain << ' ' << snapshot.sum_ns << '\n';
  out << name << "_count" << plain << ' ' << snapshot.count << '\n';
}

// The plain-text quantile block for one histogram family.
void AppendTextQuantiles(std::ostringstream& out, const std::string& prefix,
                         const obs::HistogramSnapshot& snapshot) {
  out << prefix << ".count " << snapshot.count << '\n';
  out << prefix << ".mean_ns "
      << static_cast<std::uint64_t>(snapshot.MeanNs()) << '\n';
  out << prefix << ".p50_ns " << snapshot.QuantileNs(0.50) << '\n';
  out << prefix << ".p95_ns " << snapshot.QuantileNs(0.95) << '\n';
  out << prefix << ".p99_ns " << snapshot.QuantileNs(0.99) << '\n';
}

std::string KeyHashHex(std::uint64_t hash) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << hash;
  return out.str();
}

// The result-cache key: both configs' full canonical serializations plus
// every option the response bytes depend on. The performance knobs
// (threads, template, reorder) are deliberately absent — the determinism
// contract pins the body as byte-identical across all of them.
std::string ResultCacheKeyFor(const ir::RouterConfig& config1,
                              const ir::RouterConfig& config2,
                              const core::DiffOptions& options,
                              bool json_format) {
  std::string key = encode::ConfigCanonicalKey(config1);
  key += '\037';
  key += encode::ConfigCanonicalKey(config2);
  key += "\037checks=";
  key += options.check_route_maps ? 'r' : '-';
  key += options.check_acls ? 'a' : '-';
  key += options.check_static_routes ? 's' : '-';
  key += options.check_connected_routes ? 'c' : '-';
  key += options.check_ospf ? 'o' : '-';
  key += options.check_bgp_properties ? 'b' : '-';
  key += options.check_admin_distances ? 'd' : '-';
  key += ";format=";
  key += json_format ? "json" : "text";
  return key;
}

}  // namespace

DiffService::DiffService(ServiceOptions options)
    : options_(std::move(options)),
      cache_([&] {
        TemplateCache::Options cache_options;
        cache_options.reorder = options_.diff.reorder;
        cache_options.reorder_trigger_ratio =
            options_.diff.reorder_trigger_ratio;
        cache_options.gc = options_.gc;
        cache_options.max_resident_bytes = options_.gc_watermark_bytes;
        cache_options.max_entries = options_.cache_max_entries;
        return cache_options;
      }()),
      result_cache_([&] {
        ResultCache::Options result_options;
        result_options.max_resident_bytes =
            options_.result_cache_watermark_bytes;
        result_options.max_entries = options_.result_cache_max_entries;
        return result_options;
      }()),
      flight_([&] {
        FlightRecorder::Options flight_options;
        flight_options.entries = options_.flight_recorder_entries;
        flight_options.span_slots = options_.flight_recorder_spans;
        return flight_options;
      }()) {
  // Tracing stays on for the daemon's lifetime. Toggling it per request —
  // what the serialized pipeline used to do — is a race once requests run
  // concurrently, and leaving it on is free for correctness: the capture
  // is purely observational and every response body stays CLI
  // byte-identical (pinned by tests/server/server_test.cc).
  obs::SetEnabled(true);
}

HttpResponse DiffService::Handle(const HttpRequest& request) {
  const std::uint64_t start_ns = obs::NowNs();
  HttpResponse response = Dispatch(request);
  const std::uint64_t wall_ns = obs::NowNs() - start_ns;
  endpoint_latency_.request.Record(wall_ns);
  if (request.path == "/healthz") {
    endpoint_latency_.healthz.Record(wall_ns);
  } else if (request.path == "/metrics") {
    endpoint_latency_.metrics.Record(wall_ns);
  } else if (request.path == "/batch") {
    endpoint_latency_.batch.Record(wall_ns);
  } else if (request.path == "/diff" ||
             (request.path.rfind("/sessions/", 0) == 0 &&
              request.path.size() >= 5 &&
              request.path.compare(request.path.size() - 5, 5, "/diff") ==
                  0)) {
    endpoint_latency_.diff.Record(wall_ns);
  } else if (request.path == "/sessions" ||
             request.path.rfind("/sessions/", 0) == 0) {
    endpoint_latency_.sessions.Record(wall_ns);
  } else if (request.path.rfind("/debug/", 0) == 0) {
    endpoint_latency_.debug.Record(wall_ns);
  } else {
    endpoint_latency_.other.Record(wall_ns);
  }
  return response;
}

HttpResponse DiffService::Dispatch(const HttpRequest& request) {
  BumpCounter("server.requests_total");
  if (request.path == "/healthz") {
    if (request.method != "GET") return JsonError(405, "use GET");
    HttpResponse response;
    response.body = "ok\n";
    return response;
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") return JsonError(405, "use GET");
    return HandleMetrics(request);
  }
  if (request.path == "/diff") {
    if (request.method != "POST") return JsonError(405, "use POST");
    return HandleDiff(request);
  }
  if (request.path == "/batch") {
    if (request.method != "POST") return JsonError(405, "use POST");
    return HandleBatch(request);
  }
  if (request.path == "/sessions" || request.path.rfind("/sessions/", 0) == 0) {
    return HandleSessions(request);
  }
  if (request.path.rfind("/debug/", 0) == 0) {
    return HandleDebug(request);
  }
  BumpCounter("server.errors");
  return JsonError(404, "unknown endpoint " + request.path);
}

HttpResponse DiffService::HandleDiff(const HttpRequest& request) {
  util::JsonValue body;
  std::string parse_error;
  if (!util::ParseJson(request.body, body, &parse_error) || !body.IsObject()) {
    BumpCounter("server.errors");
    return JsonError(400, "request body must be a JSON object: " +
                              parse_error);
  }
  const util::JsonValue* config1 = body.Find("config1");
  const util::JsonValue* config2 = body.Find("config2");
  if (config1 == nullptr || !config1->IsString() || config2 == nullptr ||
      !config2->IsString()) {
    BumpCounter("server.errors");
    return JsonError(400, "fields 'config1' and 'config2' (strings) are required");
  }
  std::string vendor1 = "auto";
  std::string vendor2 = "auto";
  if (const util::JsonValue* v = body.Find("vendor1"); v != nullptr) {
    vendor1 = v->string;
  }
  if (const util::JsonValue* v = body.Find("vendor2"); v != nullptr) {
    vendor2 = v->string;
  }
  if (!ValidVendor(vendor1) || !ValidVendor(vendor2)) {
    BumpCounter("server.errors");
    return JsonError(400, "vendor must be auto, cisco, or juniper");
  }
  bool json_format = false;
  if (const util::JsonValue* v = body.Find("format"); v != nullptr) {
    if (v->string == "json") {
      json_format = true;
    } else if (v->string != "text") {
      BumpCounter("server.errors");
      return JsonError(400, "format must be text or json");
    }
  }
  core::DiffOptions diff_options = options_.diff;
  if (const util::JsonValue* v = body.Find("checks");
      v != nullptr && v->IsString()) {
    std::string error;
    if (!ParseChecks(v->string, &diff_options, &error)) {
      BumpCounter("server.errors");
      return JsonError(400, error);
    }
  }
  bool want_obs = false;
  if (const util::JsonValue* v = body.Find("obs"); v != nullptr) {
    want_obs = v->boolean;
  }
  BumpCounter("server.diff_requests");
  return RunDiff("/diff", config1->string, vendor1, config2->string, vendor2,
                 diff_options, json_format, want_obs);
}

DiffService::PairOutcome DiffService::ExecutePair(const PairTask& task) {
  // Task-private capture: this sink collects every metric the task
  // produces — on this thread via the scope below, and on ConfigDiff's
  // pooled pair tasks via DiffOptions::metrics_sink. No cross-request
  // lock; concurrent tasks each fold their own snapshot at the end.
  obs::MetricsSink sink;
  obs::MetricsScope metrics_scope(sink);
  obs::ResetThreadTrace();

  FlightRecord record;
  record.endpoint = task.endpoint;
  record.cache = "off";
  PairOutcome outcome;
  const std::uint64_t wall_start = obs::NowNs();
  auto finish = [&] {
    record.result_cache = outcome.result_cache;
    record.result_key_hash = outcome.result_key_hash;
    record.status = outcome.status;
    record.wall_ns = obs::NowNs() - wall_start;
    phase_latency_.parse.Record(record.parse_ns);
    if (record.template_ns > 0) {
      phase_latency_.template_fetch.Record(record.template_ns);
    }
    if (record.diff_ns > 0) phase_latency_.diff.Record(record.diff_ns);
    if (record.render_ns > 0) phase_latency_.render.Record(record.render_ns);
    if (options_.flight_recorder) flight_.Record(std::move(record));
    return outcome;
  };
  auto fail = [&](int status, const std::string& message) {
    outcome.status = status;
    outcome.error = message;
    outcome.content_type = "application/json";
    outcome.body = "{\"error\":\"" + util::JsonEscape(message) + "\"}\n";
    return finish();
  };

  frontend::LoadResult loaded1;
  frontend::LoadResult loaded2;
  const std::uint64_t parse_start = obs::NowNs();
  try {
    loaded1 =
        frontend::LoadConfig(task.text1, "config1", ParseVendor(task.vendor1));
    loaded2 =
        frontend::LoadConfig(task.text2, "config2", ParseVendor(task.vendor2));
  } catch (const std::exception& error) {
    record.parse_ns = obs::NowNs() - parse_start;
    BumpCounter("server.errors");
    BumpCounter("server.parse_failures");
    return fail(422, error.what());
  }
  record.parse_ns = obs::NowNs() - parse_start;

  // Result-cache consult: a hit replays the rendered response and skips
  // template fetch, diff, and render — the incremental re-diff shortcut.
  // Only the parse above was paid (the fingerprint needs the IR). Obs
  // requests bypass: their envelope carries this request's live trace.
  std::string result_key;
  const bool result_eligible = options_.result_cache && !task.want_obs;
  if (result_eligible) {
    result_key = ResultCacheKeyFor(loaded1.config, loaded2.config,
                                   task.options, task.json_format);
    std::uint64_t key_hash = 0;
    if (std::shared_ptr<const ResultCache::Result> cached =
            result_cache_.Get(result_key, &key_hash)) {
      outcome.result_cache = "hit";
      outcome.result_key_hash = key_hash;
      outcome.body = cached->body;
      outcome.content_type = cached->content_type;
      outcome.equivalent = cached->equivalent;
      outcome.differences = cached->differences;
      outcome.template_cache = cached->template_cache;
      record.cache = cached->template_cache;
      record.template_key_hash = cached->template_key_hash;
      record.equivalent = cached->equivalent;
      record.differences = cached->differences;
      record.spans = obs::TakeThreadSpans();
      record.metrics = sink.Snapshot();
      FoldMetrics(record.metrics);
      return finish();
    }
    outcome.result_cache = "miss";
    outcome.result_key_hash = key_hash;
  } else if (options_.result_cache) {
    outcome.result_cache = "bypass";
  }

  core::DiffOptions diff_options = task.options;
  diff_options.metrics_sink = &sink;
  std::shared_ptr<const encode::EncodingTemplate> tmpl;
  bool cache_hit = false;
  const bool cache_eligible =
      options_.cache && diff_options.use_encoding_template &&
      (diff_options.check_route_maps || diff_options.check_acls);
  if (cache_eligible) {
    const std::uint64_t template_start = obs::NowNs();
    std::uint64_t key_hash = 0;
    tmpl = cache_.Get(loaded1.config, loaded2.config, &cache_hit, &key_hash);
    diff_options.external_template = tmpl.get();
    record.template_ns = obs::NowNs() - template_start;
    record.template_key_hash = key_hash;
    record.cache = cache_hit ? "hit" : "miss";
  }
  outcome.template_cache = cache_eligible ? (cache_hit ? "hit" : "miss")
                                          : "off";

  core::DiffReport report;
  const std::uint64_t diff_start = obs::NowNs();
  try {
    report = core::ConfigDiff(loaded1.config, loaded2.config, diff_options);
  } catch (const std::exception& error) {
    record.diff_ns = obs::NowNs() - diff_start;
    BumpCounter("server.errors");
    return fail(500, error.what());
  }
  record.diff_ns = obs::NowNs() - diff_start;

  std::vector<obs::Span> spans = obs::TakeThreadSpans();

  const std::uint64_t render_start = obs::NowNs();
  const std::string report_body =
      task.json_format ? core::ReportToJson(report, loaded1.config.hostname,
                                            loaded2.config.hostname)
                       : report.Render();
  record.render_ns = obs::NowNs() - render_start;
  record.equivalent = report.Equivalent();
  record.differences = report.entries.size();
  outcome.equivalent = report.Equivalent();
  outcome.differences = report.entries.size();

  if (task.want_obs) {
    // The one response shape that is NOT CLI byte-identical, by request:
    // the report plus this request's span tree and metrics snapshot.
    outcome.content_type = "application/json";
    std::ostringstream out;
    out << "{\"report\":"
        << core::ReportJsonFragment(report_body, task.json_format)
        << ",\"equivalent\":" << (report.Equivalent() ? "true" : "false")
        << ",\"obs\":" << obs::TraceToJson(spans, sink.Snapshot()) << "}\n";
    outcome.body = out.str();
  } else {
    outcome.content_type =
        task.json_format ? "application/json" : "text/plain; charset=utf-8";
    outcome.body = report_body;
  }

  if (result_eligible) {
    auto cached = std::make_shared<ResultCache::Result>();
    cached->body = outcome.body;
    cached->content_type = outcome.content_type;
    cached->equivalent = outcome.equivalent;
    cached->differences = outcome.differences;
    cached->template_cache = outcome.template_cache;
    cached->template_key_hash = record.template_key_hash;
    result_cache_.Put(result_key, std::move(cached));
  }

  auto metrics = sink.Snapshot();
  FoldMetrics(metrics);
  // Hand the trace to the recorder last: it sheds the spans again unless
  // this request ranks among the slowest K in the ring.
  record.spans = std::move(spans);
  record.metrics = std::move(metrics);
  return finish();
}

HttpResponse DiffService::RunDiff(const std::string& endpoint,
                                  const std::string& text1,
                                  const std::string& vendor1,
                                  const std::string& text2,
                                  const std::string& vendor2,
                                  const core::DiffOptions& options,
                                  bool json_format, bool want_obs) {
  PairTask task;
  task.endpoint = endpoint;
  task.text1 = text1;
  task.vendor1 = vendor1;
  task.text2 = text2;
  task.vendor2 = vendor2;
  task.options = options;
  task.json_format = json_format;
  task.want_obs = want_obs;
  PairOutcome outcome = ExecutePair(task);

  HttpResponse response;
  response.status = outcome.status;
  response.content_type = outcome.content_type;
  response.body = std::move(outcome.body);
  if (outcome.status == 200) {
    response.headers.emplace_back("X-Campion-Equivalent",
                                  outcome.equivalent ? "true" : "false");
    response.headers.emplace_back("X-Campion-Differences",
                                  std::to_string(outcome.differences));
    response.headers.emplace_back("X-Campion-Template-Cache",
                                  outcome.template_cache);
    response.headers.emplace_back("X-Campion-Result-Cache",
                                  outcome.result_cache);
  }
  return response;
}

HttpResponse DiffService::HandleBatch(const HttpRequest& request) {
  util::JsonValue body;
  std::string parse_error;
  if (!util::ParseJson(request.body, body, &parse_error)) {
    BumpCounter("server.errors");
    return JsonError(400, "request body must be JSON: " + parse_error);
  }
  // Either {"pairs": [...], "format": ..., "checks": ...} or a bare array
  // of pair objects.
  const util::JsonValue* pairs_json = nullptr;
  bool json_format = false;
  core::DiffOptions diff_options = options_.diff;
  if (body.IsArray()) {
    pairs_json = &body;
  } else if (body.IsObject()) {
    pairs_json = body.Find("pairs");
    if (const util::JsonValue* v = body.Find("format"); v != nullptr) {
      if (v->string == "json") {
        json_format = true;
      } else if (v->string != "text") {
        BumpCounter("server.errors");
        return JsonError(400, "format must be text or json");
      }
    }
    if (const util::JsonValue* v = body.Find("checks");
        v != nullptr && v->IsString()) {
      std::string error;
      if (!ParseChecks(v->string, &diff_options, &error)) {
        BumpCounter("server.errors");
        return JsonError(400, error);
      }
    }
  }
  if (pairs_json == nullptr || !pairs_json->IsArray() ||
      pairs_json->array.empty()) {
    BumpCounter("server.errors");
    return JsonError(400,
                     "field 'pairs' (non-empty array of pair objects) is "
                     "required");
  }
  // Each pair fans its ConfigDiff out over one worker: the batch itself is
  // the parallelism (pair granularity), and nesting pools would
  // oversubscribe. The response is byte-identical either way.
  diff_options.num_threads = 1;

  std::vector<PairTask> tasks;
  tasks.reserve(pairs_json->array.size());
  for (const util::JsonValue& pair : pairs_json->array) {
    if (!pair.IsObject()) {
      BumpCounter("server.errors");
      return JsonError(400, "each pair must be a JSON object");
    }
    const util::JsonValue* name = pair.Find("name");
    const util::JsonValue* config1 = pair.Find("config1");
    const util::JsonValue* config2 = pair.Find("config2");
    if (name == nullptr || !name->IsString() || name->string.empty() ||
        config1 == nullptr || !config1->IsString() || config2 == nullptr ||
        !config2->IsString()) {
      BumpCounter("server.errors");
      return JsonError(400,
                       "each pair requires 'name', 'config1', and 'config2' "
                       "(strings)");
    }
    PairTask task;
    task.endpoint = "/batch#" + name->string;
    task.text1 = config1->string;
    task.text2 = config2->string;
    task.vendor1 = "auto";
    task.vendor2 = "auto";
    if (const util::JsonValue* v = pair.Find("vendor1"); v != nullptr) {
      task.vendor1 = v->string;
    }
    if (const util::JsonValue* v = pair.Find("vendor2"); v != nullptr) {
      task.vendor2 = v->string;
    }
    if (!ValidVendor(task.vendor1) || !ValidVendor(task.vendor2)) {
      BumpCounter("server.errors");
      return JsonError(400, "vendor must be auto, cisco, or juniper");
    }
    task.options = diff_options;
    task.json_format = json_format;
    tasks.push_back(std::move(task));
  }
  BumpCounter("server.batch_requests");
  BumpCounter("server.batch_pairs", static_cast<double>(tasks.size()));

  // Largest-first schedule: FIFO submission order is execution order, so
  // sorting the index permutation by total config bytes (descending) keeps
  // the biggest pairs from landing last and serializing the batch tail.
  // Results land in declaration-order slots, so the merged response is
  // byte-identical at any worker count.
  std::vector<std::size_t> schedule(tasks.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) schedule[i] = i;
  std::sort(schedule.begin(), schedule.end(),
            [&](std::size_t a, std::size_t b) {
              const std::size_t size_a = tasks[a].text1.size() +
                                         tasks[a].text2.size();
              const std::size_t size_b = tasks[b].text1.size() +
                                         tasks[b].text2.size();
              if (size_a != size_b) return size_a > size_b;
              return a < b;
            });
  std::vector<PairOutcome> outcomes(tasks.size());
  const unsigned workers = util::ResolveThreadCount(options_.diff.num_threads);
  util::RunParallel(workers, tasks.size(), [&](std::size_t i) {
    const std::size_t pair_index = schedule[i];
    outcomes[pair_index] = ExecutePair(tasks[pair_index]);
  });

  // Merge in declaration order.
  bool all_ok = true;
  bool all_equivalent = true;
  bool all_hits = true;
  std::size_t total_differences = 0;
  std::ostringstream out;
  out << "{\"pairs\":[";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const PairOutcome& outcome = outcomes[i];
    const util::JsonValue& pair = pairs_json->array[i];
    if (i > 0) out << ',';
    out << "\n{\"name\":\"" << util::JsonEscape(pair.Find("name")->string)
        << "\",\"status\":" << outcome.status;
    if (outcome.status != 200) {
      out << ",\"error\":\"" << util::JsonEscape(outcome.error) << "\"}";
      all_ok = false;
      all_equivalent = false;
      all_hits = false;
      continue;
    }
    // Cache dispositions deliberately stay OUT of the body: the batch
    // response must be byte-identical with the result cache on or off and
    // at any worker count. Dispositions live in the X-Campion-Result-Cache
    // header, /metrics, and the flight recorder.
    out << ",\"equivalent\":" << (outcome.equivalent ? "true" : "false")
        << ",\"differences\":" << outcome.differences << ",\"report\":"
        << core::ReportJsonFragment(outcome.body, json_format) << '}';
    all_equivalent = all_equivalent && outcome.equivalent;
    all_hits = all_hits && outcome.result_cache == "hit";
    total_differences += outcome.differences;
  }
  out << "\n],\"pairs_total\":" << tasks.size()
      << ",\"equivalent\":" << (all_ok && all_equivalent ? "true" : "false")
      << "}\n";

  HttpResponse response;
  response.content_type = "application/json";
  response.body = out.str();
  response.headers.emplace_back("X-Campion-Batch-Pairs",
                                std::to_string(tasks.size()));
  response.headers.emplace_back(
      "X-Campion-Equivalent", all_ok && all_equivalent ? "true" : "false");
  response.headers.emplace_back("X-Campion-Differences",
                                std::to_string(total_differences));
  response.headers.emplace_back(
      "X-Campion-Result-Cache",
      options_.result_cache ? (all_hits ? "hit" : "miss") : "off");
  return response;
}

HttpResponse DiffService::HandleMetrics(const HttpRequest& request) {
  const std::string format = request.QueryParam("format", "text");
  if (format == "prometheus") {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderMetricsPrometheus();
    return response;
  }
  if (format != "text") {
    BumpCounter("server.errors");
    return JsonError(400, "format must be text or prometheus");
  }
  HttpResponse response;
  response.body = RenderMetricsText();
  return response;
}

std::string DiffService::RenderMetricsText() {
  std::ostringstream out;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const auto& [name, value] : cumulative_) {
      out << name << ' ' << util::JsonNumber(value) << '\n';
    }
  }
  out << "server.keepalive_reuses "
      << (keepalive_reuses_ ? keepalive_reuses_() : 0) << '\n';
  // Latency quantiles from the endpoint and phase histograms. Bounds are
  // inclusive bucket upper bounds (within 25% of the true rank value; see
  // obs/histogram.h).
  AppendTextQuantiles(out, "server.latency.batch",
                      endpoint_latency_.batch.Snapshot());
  AppendTextQuantiles(out, "server.latency.diff",
                      endpoint_latency_.diff.Snapshot());
  AppendTextQuantiles(out, "server.latency.request",
                      endpoint_latency_.request.Snapshot());
  AppendTextQuantiles(out, "server.phase.diff",
                      phase_latency_.diff.Snapshot());
  AppendTextQuantiles(out, "server.phase.parse",
                      phase_latency_.parse.Snapshot());
  AppendTextQuantiles(out, "server.phase.render",
                      phase_latency_.render.Snapshot());
  AppendTextQuantiles(out, "server.phase.template",
                      phase_latency_.template_fetch.Snapshot());
  const ResultCache::Stats results = result_cache_.GetStats();
  out << "server.result_cache_entries " << results.entries << '\n';
  out << "server.result_cache_evictions " << results.evictions << '\n';
  out << "server.result_cache_hits " << results.hits << '\n';
  out << "server.result_cache_misses " << results.misses << '\n';
  out << "server.result_cache_resident_bytes " << results.resident_bytes
      << '\n';
  const TemplateCache::Stats cache = cache_.GetStats();
  out << "server.template_cache_entries " << cache.entries << '\n';
  out << "server.template_cache_evictions " << cache.evictions << '\n';
  out << "server.template_cache_gc_compacted_bytes "
      << cache.gc_compacted_bytes << '\n';
  out << "server.template_cache_gc_reclaimed_nodes "
      << cache.gc_reclaimed_nodes << '\n';
  out << "server.template_cache_hits " << cache.hits << '\n';
  out << "server.template_cache_misses " << cache.misses << '\n';
  out << "server.template_cache_resident_bytes " << cache.resident_bytes
      << '\n';
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    out << "server.sessions " << sessions_.size() << '\n';
  }
  return out.str();
}

std::string DiffService::RenderMetricsPrometheus() {
  std::ostringstream out;
  // Folded request metrics and server counters: watermark-style names are
  // gauges, everything else counts monotonically.
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const auto& [name, value] : cumulative_) {
      const std::string prom = PrometheusName(name);
      out << "# TYPE " << prom
          << (IsWatermarkMetric(name) ? " gauge" : " counter") << '\n';
      out << prom << ' ' << util::JsonNumber(value) << '\n';
    }
  }
  const std::uint64_t reuses = keepalive_reuses_ ? keepalive_reuses_() : 0;
  out << "# TYPE campion_server_keepalive_reuses counter\n";
  out << "campion_server_keepalive_reuses " << reuses << '\n';
  const TemplateCache::Stats cache = cache_.GetStats();
  const auto counter = [&](const char* name, std::uint64_t value) {
    out << "# TYPE " << name << " counter\n" << name << ' ' << value << '\n';
  };
  const auto gauge = [&](const char* name, std::uint64_t value) {
    out << "# TYPE " << name << " gauge\n" << name << ' ' << value << '\n';
  };
  counter("campion_server_template_cache_hits", cache.hits);
  counter("campion_server_template_cache_misses", cache.misses);
  counter("campion_server_template_cache_evictions", cache.evictions);
  gauge("campion_server_template_cache_entries", cache.entries);
  gauge("campion_server_template_cache_resident_bytes", cache.resident_bytes);
  const ResultCache::Stats results = result_cache_.GetStats();
  counter("campion_server_result_cache_hits", results.hits);
  counter("campion_server_result_cache_misses", results.misses);
  counter("campion_server_result_cache_evictions", results.evictions);
  gauge("campion_server_result_cache_entries", results.entries);
  gauge("campion_server_result_cache_resident_bytes", results.resident_bytes);
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    gauge("campion_server_sessions", sessions_.size());
  }
  // Histograms. The unlabeled aggregate family comes first; the labeled
  // per-endpoint and per-phase families share one # TYPE line each.
  out << "# TYPE campion_request_duration_ns histogram\n";
  AppendPrometheusHistogram(out, "campion_request_duration_ns", "",
                            endpoint_latency_.request.Snapshot());
  out << "# TYPE campion_endpoint_duration_ns histogram\n";
  const std::pair<const char*, const obs::LatencyHistogram*> endpoints[] = {
      {"healthz", &endpoint_latency_.healthz},
      {"metrics", &endpoint_latency_.metrics},
      {"diff", &endpoint_latency_.diff},
      {"batch", &endpoint_latency_.batch},
      {"sessions", &endpoint_latency_.sessions},
      {"debug", &endpoint_latency_.debug},
      {"other", &endpoint_latency_.other},
  };
  for (const auto& [name, histogram] : endpoints) {
    AppendPrometheusHistogram(
        out, "campion_endpoint_duration_ns",
        std::string("endpoint=\"") + name + "\"", histogram->Snapshot());
  }
  out << "# TYPE campion_phase_duration_ns histogram\n";
  const std::pair<const char*, const obs::LatencyHistogram*> phases[] = {
      {"parse", &phase_latency_.parse},
      {"template", &phase_latency_.template_fetch},
      {"diff", &phase_latency_.diff},
      {"render", &phase_latency_.render},
  };
  for (const auto& [name, histogram] : phases) {
    AppendPrometheusHistogram(out, "campion_phase_duration_ns",
                              std::string("phase=\"") + name + "\"",
                              histogram->Snapshot());
  }
  return out.str();
}

HttpResponse DiffService::HandleDebug(const HttpRequest& request) {
  if (request.method != "GET") return JsonError(405, "use GET");
  BumpCounter("server.debug_requests");
  if (request.path == "/debug/requests" ||
      request.path.rfind("/debug/requests/", 0) == 0) {
    if (!options_.flight_recorder) {
      BumpCounter("server.errors");
      return JsonError(404, "flight recorder is disabled");
    }
    if (request.path == "/debug/requests") {
      return JsonOk(flight_.ListJson());
    }
    const std::string id_text =
        request.path.substr(std::string("/debug/requests/").size());
    char* end = nullptr;
    const std::uint64_t id = std::strtoull(id_text.c_str(), &end, 10);
    if (id_text.empty() || end == nullptr || *end != '\0') {
      BumpCounter("server.errors");
      return JsonError(400, "request id must be a decimal integer");
    }
    std::string body;
    if (!flight_.EntryJson(id, &body)) {
      BumpCounter("server.errors");
      return JsonError(404, "no request " + id_text + " in the ring");
    }
    return JsonOk(body);
  }
  if (request.path == "/debug/cache") {
    std::ostringstream out;
    const TemplateCache::Stats stats = cache_.GetStats();
    out << "{\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
        << ",\"evictions\":" << stats.evictions
        << ",\"resident_bytes\":" << stats.resident_bytes << ",\"entries\":[";
    bool first = true;
    for (const TemplateCache::EntryInfo& info : cache_.EntryInfos()) {
      if (!first) out << ',';
      first = false;
      out << "{\"key\":\"" << KeyHashHex(info.key_hash)
          << "\",\"resident_bytes\":" << info.resident_bytes
          << ",\"hits\":" << info.hits << ",\"build_seq\":" << info.build_seq
          << '}';
    }
    out << "]}\n";
    return JsonOk(out.str());
  }
  if (request.path == "/debug/result_cache") {
    std::ostringstream out;
    const ResultCache::Stats stats = result_cache_.GetStats();
    out << "{\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
        << ",\"evictions\":" << stats.evictions
        << ",\"resident_bytes\":" << stats.resident_bytes << ",\"entries\":[";
    bool first = true;
    for (const ResultCache::EntryInfo& info : result_cache_.EntryInfos()) {
      if (!first) out << ',';
      first = false;
      out << "{\"key\":\"" << KeyHashHex(info.key_hash)
          << "\",\"resident_bytes\":" << info.resident_bytes
          << ",\"hits\":" << info.hits
          << ",\"equivalent\":" << (info.equivalent ? "true" : "false")
          << ",\"differences\":" << info.differences << '}';
    }
    out << "]}\n";
    return JsonOk(out.str());
  }
  if (request.path == "/debug/sessions") {
    std::ostringstream out;
    out << "{\"sessions\":[";
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    bool first = true;
    for (const auto& [name, session] : sessions_) {
      if (!first) out << ',';
      first = false;
      out << "{\"name\":\"" << util::JsonEscape(name)
          << "\",\"running_bytes\":" << session.running.size()
          << ",\"running_vendor\":\"" << util::JsonEscape(session.running_vendor)
          << "\",\"candidate_bytes\":" << session.candidate.size()
          << ",\"candidate_vendor\":\""
          << util::JsonEscape(session.candidate_vendor) << "\"}";
    }
    out << "]}\n";
    return JsonOk(out.str());
  }
  BumpCounter("server.errors");
  return JsonError(404, "unknown endpoint " + request.path);
}

HttpResponse DiffService::HandleSessions(const HttpRequest& request) {
  BumpCounter("server.session_requests");
  if (request.path == "/sessions") {
    if (request.method != "GET") return JsonError(405, "use GET");
    std::ostringstream out;
    out << "{\"sessions\":[";
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    bool first = true;
    for (const auto& [name, session] : sessions_) {
      if (!first) out << ',';
      first = false;
      out << "{\"name\":\"" << util::JsonEscape(name) << "\",\"has_running\":"
          << (session.running.empty() ? "false" : "true")
          << ",\"has_candidate\":"
          << (session.candidate.empty() ? "false" : "true") << '}';
    }
    out << "]}\n";
    return JsonOk(out.str());
  }

  // /sessions/<name>[/<verb>]
  std::string rest = request.path.substr(std::string("/sessions/").size());
  std::string verb;
  if (const std::size_t slash = rest.find('/');
      slash != std::string::npos) {
    verb = rest.substr(slash + 1);
    rest = rest.substr(0, slash);
  }
  const std::string& name = rest;
  if (!ValidSessionName(name)) {
    BumpCounter("server.errors");
    return JsonError(400, "invalid session name");
  }

  if (verb == "running" || verb == "candidate") {
    if (request.method != "PUT") return JsonError(405, "use PUT");
    if (request.body.empty()) {
      BumpCounter("server.errors");
      return JsonError(400, "request body must be the raw config text");
    }
    const std::string vendor = request.QueryParam("vendor", "auto");
    if (!ValidVendor(vendor)) {
      BumpCounter("server.errors");
      return JsonError(400, "vendor must be auto, cisco, or juniper");
    }
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    Session& session = sessions_[name];
    if (verb == "running") {
      session.running = request.body;
      session.running_vendor = vendor;
    } else {
      session.candidate = request.body;
      session.candidate_vendor = vendor;
    }
    return JsonOk("{\"session\":\"" + util::JsonEscape(name) +
                  "\",\"slot\":\"" + verb + "\",\"bytes\":" +
                  std::to_string(request.body.size()) + "}\n");
  }

  if (verb == "diff") {
    if (request.method != "GET") return JsonError(405, "use GET");
    std::string running;
    std::string candidate;
    std::string running_vendor;
    std::string candidate_vendor;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      auto it = sessions_.find(name);
      if (it == sessions_.end()) {
        BumpCounter("server.errors");
        return JsonError(404, "no session named '" + name + "'");
      }
      if (it->second.running.empty()) {
        BumpCounter("server.errors");
        return JsonError(409, "session '" + name + "' has no running config");
      }
      if (it->second.candidate.empty()) {
        BumpCounter("server.errors");
        return JsonError(409,
                         "session '" + name + "' has no candidate config");
      }
      running = it->second.running;
      candidate = it->second.candidate;
      running_vendor = it->second.running_vendor;
      candidate_vendor = it->second.candidate_vendor;
    }
    const std::string format = request.QueryParam("format", "text");
    if (format != "text" && format != "json") {
      BumpCounter("server.errors");
      return JsonError(400, "format must be text or json");
    }
    core::DiffOptions diff_options = options_.diff;
    const std::string checks = request.QueryParam("checks");
    if (!checks.empty()) {
      std::string error;
      if (!ParseChecks(checks, &diff_options, &error)) {
        BumpCounter("server.errors");
        return JsonError(400, error);
      }
    }
    BumpCounter("server.diff_requests");
    return RunDiff(request.path, running, running_vendor, candidate,
                   candidate_vendor, diff_options, format == "json",
                   request.QueryParam("obs") == "1");
  }

  if (verb == "commit" || verb == "rollback") {
    if (request.method != "POST") return JsonError(405, "use POST");
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      BumpCounter("server.errors");
      return JsonError(404, "no session named '" + name + "'");
    }
    if (it->second.candidate.empty()) {
      BumpCounter("server.errors");
      return JsonError(409, "session '" + name + "' has no candidate config");
    }
    if (verb == "commit") {
      it->second.running = std::move(it->second.candidate);
      it->second.running_vendor = it->second.candidate_vendor;
    }
    it->second.candidate.clear();
    it->second.candidate_vendor = "auto";
    return JsonOk("{\"session\":\"" + util::JsonEscape(name) + "\",\"" +
                  verb + "\":true}\n");
  }

  if (verb.empty()) {
    if (request.method == "DELETE") {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      if (sessions_.erase(name) == 0) {
        BumpCounter("server.errors");
        return JsonError(404, "no session named '" + name + "'");
      }
      return JsonOk("{\"deleted\":\"" + util::JsonEscape(name) + "\"}\n");
    }
    if (request.method == "GET") {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      auto it = sessions_.find(name);
      if (it == sessions_.end()) {
        BumpCounter("server.errors");
        return JsonError(404, "no session named '" + name + "'");
      }
      return JsonOk("{\"name\":\"" + util::JsonEscape(name) +
                    "\",\"has_running\":" +
                    (it->second.running.empty() ? "false" : "true") +
                    ",\"has_candidate\":" +
                    (it->second.candidate.empty() ? "false" : "true") +
                    "}\n");
    }
    return JsonError(405, "use GET or DELETE");
  }

  BumpCounter("server.errors");
  return JsonError(404, "unknown session operation '" + verb + "'");
}

void DiffService::FoldMetrics(
    const std::vector<std::pair<std::string, double>>& snapshot) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  for (const auto& [name, value] : snapshot) {
    if (IsWatermarkMetric(name)) {
      double& slot = cumulative_[name];
      slot = std::max(slot, value);
    } else {
      cumulative_[name] += value;
    }
  }
}

void DiffService::BumpCounter(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  cumulative_[name] += delta;
}

}  // namespace campion::server
