#include "server/service.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "core/json_report.h"
#include "frontend/loader.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_report.h"
#include "util/json.h"

namespace campion::server {

namespace {

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\":\"" + util::JsonEscape(message) + "\"}\n";
  return response;
}

HttpResponse JsonOk(const std::string& body) {
  HttpResponse response;
  response.content_type = "application/json";
  response.body = body;
  return response;
}

ir::Vendor ParseVendor(const std::string& value) {
  if (value == "cisco") return ir::Vendor::kCisco;
  if (value == "juniper") return ir::Vendor::kJuniper;
  return ir::Vendor::kUnknown;
}

bool ValidVendor(const std::string& value) {
  return value.empty() || value == "auto" || value == "cisco" ||
         value == "juniper";
}

// Same grammar as the CLI's --checks flag; false on an unknown item.
bool ParseChecks(const std::string& list, core::DiffOptions* checks,
                 std::string* error) {
  checks->check_route_maps = false;
  checks->check_acls = false;
  checks->check_static_routes = false;
  checks->check_connected_routes = false;
  checks->check_ospf = false;
  checks->check_bgp_properties = false;
  checks->check_admin_distances = false;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (item == "route-maps") {
      checks->check_route_maps = true;
    } else if (item == "acls") {
      checks->check_acls = true;
    } else if (item == "static") {
      checks->check_static_routes = true;
    } else if (item == "connected") {
      checks->check_connected_routes = true;
    } else if (item == "ospf") {
      checks->check_ospf = true;
    } else if (item == "bgp") {
      checks->check_bgp_properties = true;
    } else if (item == "admin") {
      checks->check_admin_distances = true;
    } else if (!item.empty()) {
      *error = "unknown check '" + item + "'";
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

bool ValidSessionName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

// Watermark-style obs metrics keep their max across requests when folded
// into the daemon totals; everything else is a counter and sums.
bool IsWatermarkMetric(const std::string& name) {
  return name.find("peak") != std::string::npos ||
         name.find("load_factor") != std::string::npos ||
         name.find("resident_bytes") != std::string::npos;
}

}  // namespace

DiffService::DiffService(ServiceOptions options)
    : options_(std::move(options)),
      cache_([&] {
        TemplateCache::Options cache_options;
        cache_options.reorder = options_.diff.reorder;
        cache_options.reorder_trigger_ratio =
            options_.diff.reorder_trigger_ratio;
        cache_options.gc = options_.gc;
        cache_options.max_resident_bytes = options_.gc_watermark_bytes;
        cache_options.max_entries = options_.cache_max_entries;
        return cache_options;
      }()) {}

HttpResponse DiffService::Handle(const HttpRequest& request) {
  BumpCounter("server.requests_total");
  if (request.path == "/healthz") {
    if (request.method != "GET") return JsonError(405, "use GET");
    HttpResponse response;
    response.body = "ok\n";
    return response;
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") return JsonError(405, "use GET");
    return HandleMetrics();
  }
  if (request.path == "/diff") {
    if (request.method != "POST") return JsonError(405, "use POST");
    return HandleDiff(request);
  }
  if (request.path == "/sessions" || request.path.rfind("/sessions/", 0) == 0) {
    return HandleSessions(request);
  }
  BumpCounter("server.errors");
  return JsonError(404, "unknown endpoint " + request.path);
}

HttpResponse DiffService::HandleDiff(const HttpRequest& request) {
  util::JsonValue body;
  std::string parse_error;
  if (!util::ParseJson(request.body, body, &parse_error) || !body.IsObject()) {
    BumpCounter("server.errors");
    return JsonError(400, "request body must be a JSON object: " +
                              parse_error);
  }
  const util::JsonValue* config1 = body.Find("config1");
  const util::JsonValue* config2 = body.Find("config2");
  if (config1 == nullptr || !config1->IsString() || config2 == nullptr ||
      !config2->IsString()) {
    BumpCounter("server.errors");
    return JsonError(400, "fields 'config1' and 'config2' (strings) are required");
  }
  std::string vendor1 = "auto";
  std::string vendor2 = "auto";
  if (const util::JsonValue* v = body.Find("vendor1"); v != nullptr) {
    vendor1 = v->string;
  }
  if (const util::JsonValue* v = body.Find("vendor2"); v != nullptr) {
    vendor2 = v->string;
  }
  if (!ValidVendor(vendor1) || !ValidVendor(vendor2)) {
    BumpCounter("server.errors");
    return JsonError(400, "vendor must be auto, cisco, or juniper");
  }
  bool json_format = false;
  if (const util::JsonValue* v = body.Find("format"); v != nullptr) {
    if (v->string == "json") {
      json_format = true;
    } else if (v->string != "text") {
      BumpCounter("server.errors");
      return JsonError(400, "format must be text or json");
    }
  }
  core::DiffOptions diff_options = options_.diff;
  if (const util::JsonValue* v = body.Find("checks");
      v != nullptr && v->IsString()) {
    std::string error;
    if (!ParseChecks(v->string, &diff_options, &error)) {
      BumpCounter("server.errors");
      return JsonError(400, error);
    }
  }
  bool want_obs = false;
  if (const util::JsonValue* v = body.Find("obs"); v != nullptr) {
    want_obs = v->boolean;
  }
  BumpCounter("server.diff_requests");
  return RunDiff(config1->string, vendor1, config2->string, vendor2,
                 diff_options, json_format, want_obs);
}

HttpResponse DiffService::RunDiff(const std::string& text1,
                                  const std::string& vendor1,
                                  const std::string& text2,
                                  const std::string& vendor2,
                                  const core::DiffOptions& options,
                                  bool json_format, bool want_obs) {
  // One request at a time through the pipeline: the obs registry is
  // process-global, so this is what makes the capture below attributable
  // to THIS request (see the header's concurrency-model note).
  std::lock_guard<std::mutex> pipeline(pipeline_mutex_);
  const bool obs_was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  obs::MetricsRegistry::Instance().Reset();
  obs::ResetThreadTrace();

  frontend::LoadResult loaded1;
  frontend::LoadResult loaded2;
  try {
    loaded1 = frontend::LoadConfig(text1, "config1", ParseVendor(vendor1));
    loaded2 = frontend::LoadConfig(text2, "config2", ParseVendor(vendor2));
  } catch (const std::exception& error) {
    obs::SetEnabled(obs_was_enabled);
    BumpCounter("server.errors");
    BumpCounter("server.parse_failures");
    return JsonError(422, error.what());
  }

  core::DiffOptions diff_options = options;
  std::shared_ptr<const encode::EncodingTemplate> tmpl;
  bool cache_hit = false;
  const bool cache_eligible =
      options_.cache && diff_options.use_encoding_template &&
      (diff_options.check_route_maps || diff_options.check_acls);
  if (cache_eligible) {
    tmpl = cache_.Get(loaded1.config, loaded2.config, &cache_hit);
    diff_options.external_template = tmpl.get();
  }

  core::DiffReport report;
  try {
    report = core::ConfigDiff(loaded1.config, loaded2.config, diff_options);
  } catch (const std::exception& error) {
    obs::SetEnabled(obs_was_enabled);
    BumpCounter("server.errors");
    return JsonError(500, error.what());
  }

  std::vector<obs::Span> spans = obs::TakeThreadSpans();
  auto metrics = obs::MetricsRegistry::Instance().Snapshot();
  obs::SetEnabled(obs_was_enabled);
  FoldMetrics(metrics);

  const std::string report_body =
      json_format ? core::ReportToJson(report, loaded1.config.hostname,
                                       loaded2.config.hostname)
                  : report.Render();

  HttpResponse response;
  response.headers.emplace_back("X-Campion-Equivalent",
                                report.Equivalent() ? "true" : "false");
  response.headers.emplace_back("X-Campion-Differences",
                                std::to_string(report.entries.size()));
  response.headers.emplace_back(
      "X-Campion-Template-Cache",
      cache_eligible ? (cache_hit ? "hit" : "miss") : "off");
  if (want_obs) {
    // The one response shape that is NOT CLI byte-identical, by request:
    // the report plus this request's span tree and metrics snapshot.
    response.content_type = "application/json";
    std::ostringstream out;
    out << "{\"report\":";
    if (json_format) {
      out << report_body;
    } else {
      out << '"' << util::JsonEscape(report_body) << '"';
    }
    out << ",\"equivalent\":" << (report.Equivalent() ? "true" : "false");
    out << ",\"obs\":" << obs::TraceToJson(spans, metrics) << "}\n";
    response.body = out.str();
    return response;
  }
  response.content_type =
      json_format ? "application/json" : "text/plain; charset=utf-8";
  response.body = report_body;
  return response;
}

HttpResponse DiffService::HandleMetrics() {
  std::ostringstream out;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const auto& [name, value] : cumulative_) {
      out << name << ' ' << util::JsonNumber(value) << '\n';
    }
  }
  const TemplateCache::Stats cache = cache_.GetStats();
  out << "server.template_cache_entries " << cache.entries << '\n';
  out << "server.template_cache_evictions " << cache.evictions << '\n';
  out << "server.template_cache_gc_compacted_bytes "
      << cache.gc_compacted_bytes << '\n';
  out << "server.template_cache_gc_reclaimed_nodes "
      << cache.gc_reclaimed_nodes << '\n';
  out << "server.template_cache_hits " << cache.hits << '\n';
  out << "server.template_cache_misses " << cache.misses << '\n';
  out << "server.template_cache_resident_bytes " << cache.resident_bytes
      << '\n';
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    out << "server.sessions " << sessions_.size() << '\n';
  }
  HttpResponse response;
  response.body = out.str();
  return response;
}

HttpResponse DiffService::HandleSessions(const HttpRequest& request) {
  BumpCounter("server.session_requests");
  if (request.path == "/sessions") {
    if (request.method != "GET") return JsonError(405, "use GET");
    std::ostringstream out;
    out << "{\"sessions\":[";
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    bool first = true;
    for (const auto& [name, session] : sessions_) {
      if (!first) out << ',';
      first = false;
      out << "{\"name\":\"" << util::JsonEscape(name) << "\",\"has_running\":"
          << (session.running.empty() ? "false" : "true")
          << ",\"has_candidate\":"
          << (session.candidate.empty() ? "false" : "true") << '}';
    }
    out << "]}\n";
    return JsonOk(out.str());
  }

  // /sessions/<name>[/<verb>]
  std::string rest = request.path.substr(std::string("/sessions/").size());
  std::string verb;
  if (const std::size_t slash = rest.find('/');
      slash != std::string::npos) {
    verb = rest.substr(slash + 1);
    rest = rest.substr(0, slash);
  }
  const std::string& name = rest;
  if (!ValidSessionName(name)) {
    BumpCounter("server.errors");
    return JsonError(400, "invalid session name");
  }

  if (verb == "running" || verb == "candidate") {
    if (request.method != "PUT") return JsonError(405, "use PUT");
    if (request.body.empty()) {
      BumpCounter("server.errors");
      return JsonError(400, "request body must be the raw config text");
    }
    const std::string vendor = request.QueryParam("vendor", "auto");
    if (!ValidVendor(vendor)) {
      BumpCounter("server.errors");
      return JsonError(400, "vendor must be auto, cisco, or juniper");
    }
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    Session& session = sessions_[name];
    if (verb == "running") {
      session.running = request.body;
      session.running_vendor = vendor;
    } else {
      session.candidate = request.body;
      session.candidate_vendor = vendor;
    }
    return JsonOk("{\"session\":\"" + util::JsonEscape(name) +
                  "\",\"slot\":\"" + verb + "\",\"bytes\":" +
                  std::to_string(request.body.size()) + "}\n");
  }

  if (verb == "diff") {
    if (request.method != "GET") return JsonError(405, "use GET");
    std::string running;
    std::string candidate;
    std::string running_vendor;
    std::string candidate_vendor;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      auto it = sessions_.find(name);
      if (it == sessions_.end()) {
        BumpCounter("server.errors");
        return JsonError(404, "no session named '" + name + "'");
      }
      if (it->second.running.empty()) {
        BumpCounter("server.errors");
        return JsonError(409, "session '" + name + "' has no running config");
      }
      if (it->second.candidate.empty()) {
        BumpCounter("server.errors");
        return JsonError(409,
                         "session '" + name + "' has no candidate config");
      }
      running = it->second.running;
      candidate = it->second.candidate;
      running_vendor = it->second.running_vendor;
      candidate_vendor = it->second.candidate_vendor;
    }
    const std::string format = request.QueryParam("format", "text");
    if (format != "text" && format != "json") {
      BumpCounter("server.errors");
      return JsonError(400, "format must be text or json");
    }
    core::DiffOptions diff_options = options_.diff;
    const std::string checks = request.QueryParam("checks");
    if (!checks.empty()) {
      std::string error;
      if (!ParseChecks(checks, &diff_options, &error)) {
        BumpCounter("server.errors");
        return JsonError(400, error);
      }
    }
    BumpCounter("server.diff_requests");
    return RunDiff(running, running_vendor, candidate, candidate_vendor,
                   diff_options, format == "json",
                   request.QueryParam("obs") == "1");
  }

  if (verb == "commit" || verb == "rollback") {
    if (request.method != "POST") return JsonError(405, "use POST");
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      BumpCounter("server.errors");
      return JsonError(404, "no session named '" + name + "'");
    }
    if (it->second.candidate.empty()) {
      BumpCounter("server.errors");
      return JsonError(409, "session '" + name + "' has no candidate config");
    }
    if (verb == "commit") {
      it->second.running = std::move(it->second.candidate);
      it->second.running_vendor = it->second.candidate_vendor;
    }
    it->second.candidate.clear();
    it->second.candidate_vendor = "auto";
    return JsonOk("{\"session\":\"" + util::JsonEscape(name) + "\",\"" +
                  verb + "\":true}\n");
  }

  if (verb.empty()) {
    if (request.method == "DELETE") {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      if (sessions_.erase(name) == 0) {
        BumpCounter("server.errors");
        return JsonError(404, "no session named '" + name + "'");
      }
      return JsonOk("{\"deleted\":\"" + util::JsonEscape(name) + "\"}\n");
    }
    if (request.method == "GET") {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      auto it = sessions_.find(name);
      if (it == sessions_.end()) {
        BumpCounter("server.errors");
        return JsonError(404, "no session named '" + name + "'");
      }
      return JsonOk("{\"name\":\"" + util::JsonEscape(name) +
                    "\",\"has_running\":" +
                    (it->second.running.empty() ? "false" : "true") +
                    ",\"has_candidate\":" +
                    (it->second.candidate.empty() ? "false" : "true") +
                    "}\n");
    }
    return JsonError(405, "use GET or DELETE");
  }

  BumpCounter("server.errors");
  return JsonError(404, "unknown session operation '" + verb + "'");
}

void DiffService::FoldMetrics(
    const std::vector<std::pair<std::string, double>>& snapshot) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  for (const auto& [name, value] : snapshot) {
    if (IsWatermarkMetric(name)) {
      double& slot = cumulative_[name];
      slot = std::max(slot, value);
    } else {
      cumulative_[name] += value;
    }
  }
}

void DiffService::BumpCounter(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  cumulative_[name] += delta;
}

}  // namespace campion::server
