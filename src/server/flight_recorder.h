#pragma once

// Per-request flight recorder for the campion_serve daemon: a bounded ring
// of the last N diff executions — wall time, phase breakdown, cache
// disposition, template-key digest, status — with the full span tree and
// metrics snapshot retained only for the K slowest entries still in the
// ring. The point is post-hoc debugging of a live daemon ("why was that
// request slow?") at strictly bounded memory: summaries are a few hundred
// bytes each, and at most K of them carry a trace. `GET /debug/requests`
// renders the ring newest-first; `GET /debug/requests/<id>` renders one
// entry with its trace when retained.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace campion::server {

struct FlightRecord {
  std::uint64_t id = 0;        // Assigned by the recorder, monotone from 1.
  std::string endpoint;        // "/diff" or "/sessions/<name>/diff".
  int status = 0;              // HTTP status of the response.
  std::uint64_t wall_ns = 0;   // Whole RunDiff wall time.
  // Fixed pipeline phases, zero when skipped (e.g. template_ns on a
  // cache-ineligible request, everything after parse on a 422).
  std::uint64_t parse_ns = 0;
  std::uint64_t template_ns = 0;
  std::uint64_t diff_ns = 0;
  std::uint64_t render_ns = 0;
  std::string cache;           // Template cache: "hit", "miss", or "off".
  std::uint64_t template_key_hash = 0;  // FNV-1a of the cache key; 0 = off.
  // Result cache: "hit", "miss", "bypass" (obs envelope requested), or
  // "off". On a hit the template phases above are zero — the response was
  // replayed, not recomputed.
  std::string result_cache = "off";
  std::uint64_t result_key_hash = 0;    // FNV-1a of the result key; 0 = off.
  bool equivalent = false;
  std::size_t differences = 0;
  // Retained only while this record is among the K slowest in the ring.
  std::vector<obs::Span> spans;
  std::vector<std::pair<std::string, double>> metrics;
};

class FlightRecorder {
 public:
  struct Options {
    std::size_t entries = 64;    // Ring capacity N (>= 1 enforced).
    std::size_t span_slots = 8;  // Slowest-K records that keep their trace.
  };

  explicit FlightRecorder(Options options);

  // Assigns the record's id, appends it (evicting the oldest past N), and
  // re-enforces the slowest-K trace retention. Thread-safe.
  void Record(FlightRecord record);

  // {"requests":[...]} — newest first, summaries only (no span trees).
  std::string ListJson() const;

  // Full entry JSON including the retained trace (or "trace": null when the
  // spans were shed). False when no record with this id is in the ring.
  bool EntryJson(std::uint64_t id, std::string* out) const;

  std::size_t size() const;
  // Records currently holding a span tree (<= span_slots); tests pin the
  // memory bound with this.
  std::size_t TraceCount() const;

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::uint64_t next_id_ = 1;
  std::deque<FlightRecord> ring_;  // Front = oldest.
};

}  // namespace campion::server
