#include "server/template_cache.h"

#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "bdd/bdd.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hash.h"

namespace campion::server {

namespace {

std::optional<bdd::SiftMode> SiftModeFor(
    core::DiffOptions::ReorderMode mode) {
  switch (mode) {
    case core::DiffOptions::ReorderMode::kOff:
      return std::nullopt;
    case core::DiffOptions::ReorderMode::kSift:
      return bdd::SiftMode::kVars;
    case core::DiffOptions::ReorderMode::kGroupSift:
      return bdd::SiftMode::kGroups;
  }
  return std::nullopt;
}

void AppendStructuralKeys(const ir::RouterConfig& config,
                          std::set<std::string>& prefix_keys,
                          std::set<std::string>& community_keys,
                          std::set<std::string>& acl_keys) {
  for (const auto& [name, list] : config.prefix_lists) {
    prefix_keys.insert(encode::PrefixListKey(list));
  }
  for (const auto& [name, list] : config.community_lists) {
    community_keys.insert(encode::CommunityListKey(list));
  }
  for (const auto& [name, acl] : config.acls) {
    for (const auto& line : acl.lines) {
      acl_keys.insert(encode::AclLineMatchKey(line));
    }
  }
}

}  // namespace

std::string TemplateCacheKey(const ir::RouterConfig& config1,
                             const ir::RouterConfig& config2) {
  std::ostringstream key;
  // The community universe in layout order: the template concatenates
  // config1's then config2's sorted universes verbatim, and that vector is
  // what assigns community variables. Anything short of the exact sequence
  // could alias two different variable layouts under one key.
  key << "communities=";
  for (const auto& c : config1.AllCommunities()) key << c.ToString() << ',';
  key << '|';
  for (const auto& c : config2.AllCommunities()) key << c.ToString() << ',';
  // Structural keys as sets: the template dedupes across sides and ignores
  // declaration order, so the key does too.
  std::set<std::string> prefix_keys;
  std::set<std::string> community_keys;
  std::set<std::string> acl_keys;
  AppendStructuralKeys(config1, prefix_keys, community_keys, acl_keys);
  AppendStructuralKeys(config2, prefix_keys, community_keys, acl_keys);
  key << ";prefix_lists=";
  for (const auto& k : prefix_keys) key << k << '\036';
  key << ";community_lists=";
  for (const auto& k : community_keys) key << k << '\036';
  key << ";acl_lines=";
  for (const auto& k : acl_keys) key << k << '\036';
  return key.str();
}

std::size_t TemplateCache::ResidentBytes(
    const encode::EncodingTemplate& tmpl) {
  std::size_t bytes = 0;
  if (tmpl.has_route_side()) {
    bytes += tmpl.route_manager().MemoryStats().total_bytes;
  }
  if (tmpl.has_packet_side()) {
    bytes += tmpl.packet_manager().MemoryStats().total_bytes;
  }
  return bytes;
}

std::shared_ptr<const encode::EncodingTemplate> TemplateCache::Get(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2,
    bool* cache_hit, std::uint64_t* key_hash) {
  const std::string key = TemplateCacheKey(config1, config2);
  const std::uint64_t digest = util::Fnv1a64(key);
  if (key_hash != nullptr) *key_hash = digest;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.erase(it->second.lru_position);
      lru_.push_front(key);
      it->second.lru_position = lru_.begin();
      ++stats_.hits;
      ++it->second.hits;
      if (cache_hit != nullptr) *cache_hit = true;
      obs::Count("encode.template_cache_hit");
      return it->second.tmpl;
    }
  }
  // One build lock for all misses: requests run the pipeline concurrently
  // (each with its own metrics sink), so two simultaneous misses on the
  // same key are a real possibility — serializing the build keeps them from
  // duplicating the most expensive operation the daemon performs.
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    // Lost a race between the two lock scopes.
    lru_.erase(it->second.lru_position);
    lru_.push_front(key);
    it->second.lru_position = lru_.begin();
    ++stats_.hits;
    ++it->second.hits;
    if (cache_hit != nullptr) *cache_hit = true;
    obs::Count("encode.template_cache_hit");
    return it->second.tmpl;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  ++stats_.misses;
  obs::Count("encode.template_cache_miss");

  const std::optional<bdd::SiftMode> sift_mode = SiftModeFor(options_.reorder);
  auto tmpl = std::make_shared<encode::EncodingTemplate>(
      config1, config2, /*route_side=*/true, /*packet_side=*/true,
      /*sift_witnesses=*/sift_mode.has_value());
  {
    obs::ScopedSpan span("encode_template_cache_build",
                         config1.hostname + " vs " + config2.hostname);
    if (sift_mode.has_value()) {
      bdd::SiftResult sift = tmpl->Reorder(*sift_mode);
      span.AddAttr("sift_passes", static_cast<double>(sift.passes));
      span.AddAttr("sift_swaps", static_cast<double>(sift.swaps));
    }
    if (options_.gc) {
      bdd::GcResult gc = tmpl->Compact();
      stats_.gc_reclaimed_nodes += gc.reclaimed;
      if (gc.arena_bytes_before > gc.arena_bytes_after) {
        stats_.gc_compacted_bytes +=
            gc.arena_bytes_before - gc.arena_bytes_after;
      }
      span.AddAttr("gc_reclaimed_nodes", static_cast<double>(gc.reclaimed));
      obs::Count("bdd.gc_runs", 1.0);
      obs::Count("bdd.gc_reclaimed_nodes", static_cast<double>(gc.reclaimed));
    }
  }

  Entry entry;
  entry.tmpl = tmpl;
  entry.resident_bytes = ResidentBytes(*tmpl);
  entry.key_hash = digest;
  entry.build_seq = ++build_counter_;
  lru_.push_front(key);
  entry.lru_position = lru_.begin();
  stats_.resident_bytes += entry.resident_bytes;
  entries_.emplace(key, std::move(entry));
  stats_.entries = entries_.size();
  EvictIfNeeded();
  obs::MaxGauge("encode.template_cache_resident_bytes",
                static_cast<double>(stats_.resident_bytes));
  return tmpl;
}

void TemplateCache::EvictIfNeeded() {
  auto over_limit = [this] {
    if (options_.max_entries != 0 && entries_.size() > options_.max_entries) {
      return true;
    }
    return options_.gc && options_.max_resident_bytes != 0 &&
           stats_.resident_bytes > options_.max_resident_bytes;
  };
  // Never evict the entry just inserted: a watermark smaller than one
  // template must still serve the current request.
  while (entries_.size() > 1 && over_limit()) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.resident_bytes -= it->second.resident_bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
    obs::Count("encode.template_cache_eviction");
  }
  stats_.entries = entries_.size();
}

TemplateCache::Stats TemplateCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<TemplateCache::EntryInfo> TemplateCache::EntryInfos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EntryInfo> infos;
  infos.reserve(entries_.size());
  for (const std::string& key : lru_) {  // MRU first.
    auto it = entries_.find(key);
    EntryInfo info;
    info.key_hash = it->second.key_hash;
    info.resident_bytes = it->second.resident_bytes;
    info.hits = it->second.hits;
    info.build_seq = it->second.build_seq;
    infos.push_back(info);
  }
  return infos;
}

void TemplateCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  stats_.entries = 0;
  stats_.resident_bytes = 0;
}

}  // namespace campion::server
