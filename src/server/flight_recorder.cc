#include "server/flight_recorder.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "obs/trace_report.h"
#include "util/json.h"

namespace campion::server {

namespace {

std::string KeyHashHex(std::uint64_t hash) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << hash;
  return out.str();
}

// The summary object shared by the list and detail views.
void AppendSummary(std::ostringstream& out, const FlightRecord& record) {
  out << "{\"id\":" << record.id << ",\"endpoint\":\""
      << util::JsonEscape(record.endpoint) << "\",\"status\":" << record.status
      << ",\"wall_ns\":" << record.wall_ns
      << ",\"phases\":{\"parse_ns\":" << record.parse_ns
      << ",\"template_ns\":" << record.template_ns
      << ",\"diff_ns\":" << record.diff_ns
      << ",\"render_ns\":" << record.render_ns << '}'
      << ",\"cache\":\"" << util::JsonEscape(record.cache) << '"';
  if (record.template_key_hash != 0) {
    out << ",\"template_key\":\"" << KeyHashHex(record.template_key_hash)
        << '"';
  } else {
    out << ",\"template_key\":null";
  }
  out << ",\"result_cache\":\"" << util::JsonEscape(record.result_cache)
      << '"';
  if (record.result_key_hash != 0) {
    out << ",\"result_key\":\"" << KeyHashHex(record.result_key_hash) << '"';
  } else {
    out << ",\"result_key\":null";
  }
  out << ",\"equivalent\":" << (record.equivalent ? "true" : "false")
      << ",\"differences\":" << record.differences << ",\"trace_retained\":"
      << (record.spans.empty() ? "false" : "true");
}

}  // namespace

FlightRecorder::FlightRecorder(Options options) : options_(options) {
  if (options_.entries == 0) options_.entries = 1;
}

void FlightRecorder::Record(FlightRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.id = next_id_++;
  if (record.spans.size() > 0 && options_.span_slots == 0) {
    std::vector<obs::Span>().swap(record.spans);
    std::vector<std::pair<std::string, double>>().swap(record.metrics);
  }
  ring_.push_back(std::move(record));
  while (ring_.size() > options_.entries) ring_.pop_front();
  // Slowest-K retention: shed the trace of the FASTEST trace-holding record
  // until at most span_slots remain. O(ring) per insert, which is nothing
  // next to the request the insert accounts for.
  std::size_t holding = 0;
  for (const FlightRecord& r : ring_) {
    if (!r.spans.empty()) ++holding;
  }
  while (holding > options_.span_slots) {
    FlightRecord* fastest = nullptr;
    for (FlightRecord& r : ring_) {
      if (r.spans.empty()) continue;
      if (fastest == nullptr || r.wall_ns < fastest->wall_ns) fastest = &r;
    }
    std::vector<obs::Span>().swap(fastest->spans);
    std::vector<std::pair<std::string, double>>().swap(fastest->metrics);
    --holding;
  }
}

std::string FlightRecorder::ListJson() const {
  std::ostringstream out;
  out << "{\"requests\":[";
  std::lock_guard<std::mutex> lock(mutex_);
  bool first = true;
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (!first) out << ',';
    first = false;
    AppendSummary(out, *it);
    out << '}';
  }
  out << "]}\n";
  return out.str();
}

bool FlightRecorder::EntryJson(std::uint64_t id, std::string* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const FlightRecord& record : ring_) {
    if (record.id != id) continue;
    std::ostringstream body;
    AppendSummary(body, record);
    body << ",\"trace\":";
    if (record.spans.empty() && record.metrics.empty()) {
      body << "null";
    } else {
      body << obs::TraceToJson(record.spans, record.metrics);
    }
    body << "}\n";
    *out = body.str();
    return true;
  }
  return false;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::size_t FlightRecorder::TraceCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t holding = 0;
  for (const FlightRecord& r : ring_) {
    if (!r.spans.empty()) ++holding;
  }
  return holding;
}

}  // namespace campion::server
