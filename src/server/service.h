#pragma once

// DiffService: the campion_serve daemon's request brain (docs/daemon.md is
// the API reference; this header documents the implementation contract).
//
// Endpoints:
//   GET  /healthz                       liveness probe
//   GET  /metrics                       cumulative daemon metrics, text
//                                       (?format=prometheus for scrapers)
//   POST /diff                          one-shot comparison (JSON body)
//   POST /batch                         many named pairs in one request,
//                                       responses merged in declaration
//                                       order (byte-identical at any
//                                       --http_threads/--threads)
//   GET  /sessions                      list sessions (JSON)
//   PUT  /sessions/<name>/running       upload the running config (raw text)
//   PUT  /sessions/<name>/candidate     upload the candidate config
//   GET  /sessions/<name>               session status (JSON)
//   GET  /sessions/<name>/diff          diff running vs candidate
//   POST /sessions/<name>/commit        promote candidate to running
//   POST /sessions/<name>/rollback      discard the candidate
//   DELETE /sessions/<name>             drop the session
//   GET  /debug/requests                flight recorder: last-N summaries
//   GET  /debug/requests/<id>           one entry, with trace when retained
//   GET  /debug/cache                   per-entry template-cache view
//   GET  /debug/result_cache            per-entry result-cache view
//   GET  /debug/sessions                session detail (sizes, vendors)
//
// Determinism contract: a /diff (or session diff) response body is the
// EXACT byte sequence the one-shot CLI writes to stdout for the same two
// configs and format, at every `--threads` value — request metadata
// travels in X-Campion-* headers, never in the body, so `curl | diff -`
// against the CLI is the CI smoke check. The optional obs envelope
// (`"obs": true` / `?obs=1`) is the one deliberate exception: it wraps the
// report in JSON together with the request's span tree and metrics.
//
// Concurrency model: requests run the full parse→template→diff→render
// pipeline CONCURRENTLY, one per connection worker, each still fanning out
// over `--threads` workers inside ConfigDiff. What makes that sound is
// scoped observability capture: every request records into its own
// obs::MetricsSink (threaded through DiffOptions::metrics_sink so the
// pooled pair tasks land there too) and its own thread-local span buffer,
// and the service folds the private snapshot into the daemon cumulative
// map only at request completion. The only cross-request serialization
// left is the template cache's build lock, which exists to deduplicate
// simultaneous misses on one key, not to order requests.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/config_diff.h"
#include "ir/config.h"
#include "obs/histogram.h"
#include "server/flight_recorder.h"
#include "server/http.h"
#include "server/result_cache.h"
#include "server/template_cache.h"

namespace campion::server {

struct ServiceOptions {
  // Baseline diff options for every request: threads, template on/off,
  // reorder mode. Per-request JSON fields override checks/format only,
  // never the performance knobs (those are fleet configuration).
  core::DiffOptions diff;
  // Cross-request template cache (off = every request builds privately,
  // exactly like the CLI).
  bool cache = true;
  // Template-manager GC: per-template compaction after build plus the LRU
  // byte watermark below. Off = the bench_serve A/B baseline.
  bool gc = true;
  std::size_t gc_watermark_bytes = 256 * 1024 * 1024;
  std::size_t cache_max_entries = 0;  // 0 = unlimited.
  // Incremental result cache (src/server/result_cache.h): rendered pair
  // responses keyed by the full canonical structure of both configs plus
  // the diff-relevant options. Off = every request re-runs the pipeline
  // (the bench_fleet A/B baseline and the parity reference).
  bool result_cache = true;
  std::size_t result_cache_watermark_bytes = 64 * 1024 * 1024;
  std::size_t result_cache_max_entries = 0;  // 0 = unlimited.
  // Flight recorder (src/server/flight_recorder.h): ring of the last
  // `flight_recorder_entries` diff executions, span trees retained for the
  // `flight_recorder_spans` slowest. Off = record nothing (/debug/requests
  // answers 404; the bench A/B pins the overhead of "on").
  bool flight_recorder = true;
  std::size_t flight_recorder_entries = 64;
  std::size_t flight_recorder_spans = 8;
};

class DiffService {
 public:
  explicit DiffService(ServiceOptions options);

  // Thread-safe: called concurrently by HttpServer's connection workers.
  HttpResponse Handle(const HttpRequest& request);

  TemplateCache::Stats CacheStats() const { return cache_.GetStats(); }
  ResultCache::Stats ResultCacheStats() const {
    return result_cache_.GetStats();
  }
  const FlightRecorder& Recorder() const { return flight_; }

  // Wires the transport's keep-alive reuse counter into /metrics
  // (`server.keepalive_reuses`). The service cannot own the HttpServer —
  // the server owns the handler that calls the service — so the binary
  // connects them after both exist. Unset reads as 0.
  void SetKeepaliveReuses(std::function<std::uint64_t()> fn) {
    keepalive_reuses_ = std::move(fn);
  }

 private:
  struct Session {
    // Configs are stored as text and re-parsed per diff: parsing is cheap
    // next to the semantic diff, and storing text keeps commit/rollback
    // trivially exact (no IR round-trip).
    std::string running;
    std::string candidate;
    std::string running_vendor = "auto";    // As uploaded (?vendor=).
    std::string candidate_vendor = "auto";
  };

  // Per-endpoint wall-time histograms plus one aggregate, all recorded in
  // Handle. The set is fixed so the record path is a lock-free array
  // update — no map lookups or allocation while requests are in flight.
  struct EndpointLatency {
    obs::LatencyHistogram request;   // Every request, any endpoint.
    obs::LatencyHistogram healthz;
    obs::LatencyHistogram metrics;
    obs::LatencyHistogram diff;      // POST /diff and session diffs.
    obs::LatencyHistogram batch;     // POST /batch, whole-request wall.
    obs::LatencyHistogram sessions;  // Session CRUD (non-diff verbs).
    obs::LatencyHistogram debug;
    obs::LatencyHistogram other;     // 404s and anything unclassified.
  };
  // Pipeline-phase histograms, recorded per diff execution in RunDiff.
  struct PhaseLatency {
    obs::LatencyHistogram parse;
    obs::LatencyHistogram template_fetch;  // Cache Get (build on a miss).
    obs::LatencyHistogram diff;
    obs::LatencyHistogram render;
  };

  HttpResponse Dispatch(const HttpRequest& request);
  HttpResponse HandleDiff(const HttpRequest& request);
  HttpResponse HandleBatch(const HttpRequest& request);
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleSessions(const HttpRequest& request);
  HttpResponse HandleDebug(const HttpRequest& request);

  // One comparison, described transport-free so /diff, session diffs, and
  // every pair of a /batch share the execution path.
  struct PairTask {
    std::string endpoint;  // Flight-recorder label ("/diff", "/batch#a").
    std::string text1;
    std::string vendor1;
    std::string text2;
    std::string vendor2;
    core::DiffOptions options;
    bool json_format = false;
    bool want_obs = false;  // Obs envelope; bypasses the result cache.
  };
  struct PairOutcome {
    int status = 200;
    std::string body;  // Report body (or obs envelope); error JSON on !ok.
    std::string content_type;
    bool equivalent = false;
    std::size_t differences = 0;
    std::string template_cache = "off";  // "hit", "miss", or "off"; on a
                                         // result-cache hit, replayed from
                                         // the run that computed the entry.
    std::string result_cache = "off";    // "hit", "miss", "bypass", "off".
    std::uint64_t result_key_hash = 0;   // FNV-1a of the result-cache key.
    std::string error;                   // Non-empty when status != 200.
  };

  // Parses, diffs, and renders one comparison with task-private
  // observability capture (no cross-request lock — safe to call
  // concurrently from batch workers). Consults the result cache first
  // (a hit skips template fetch, diff, and render), folds the task's
  // metrics, and leaves one flight-recorder entry behind when the
  // recorder is on.
  PairOutcome ExecutePair(const PairTask& task);

  // ExecutePair wrapped back into an HTTP response (headers + error
  // passthrough) for the single-pair endpoints.
  HttpResponse RunDiff(const std::string& endpoint, const std::string& text1,
                       const std::string& vendor1, const std::string& text2,
                       const std::string& vendor2,
                       const core::DiffOptions& options, bool json_format,
                       bool want_obs);

  std::string RenderMetricsText();
  std::string RenderMetricsPrometheus();

  void FoldMetrics(
      const std::vector<std::pair<std::string, double>>& snapshot);
  void BumpCounter(const std::string& name, double delta = 1.0);

  ServiceOptions options_;
  TemplateCache cache_;
  ResultCache result_cache_;
  FlightRecorder flight_;
  EndpointLatency endpoint_latency_;
  PhaseLatency phase_latency_;
  std::function<std::uint64_t()> keepalive_reuses_;

  std::mutex sessions_mutex_;
  std::map<std::string, Session> sessions_;

  // Daemon-cumulative metrics (server.* counters plus every obs metric the
  // requests produced, summed — watermark-style names keep their max).
  // /metrics renders this map.
  mutable std::mutex metrics_mutex_;
  std::map<std::string, double> cumulative_;
};

}  // namespace campion::server
