#pragma once

// DiffService: the campion_serve daemon's request brain (docs/daemon.md is
// the API reference; this header documents the implementation contract).
//
// Endpoints:
//   GET  /healthz                       liveness probe
//   GET  /metrics                       cumulative daemon metrics, text
//   POST /diff                          one-shot comparison (JSON body)
//   GET  /sessions                      list sessions (JSON)
//   PUT  /sessions/<name>/running       upload the running config (raw text)
//   PUT  /sessions/<name>/candidate     upload the candidate config
//   GET  /sessions/<name>               session status (JSON)
//   GET  /sessions/<name>/diff          diff running vs candidate
//   POST /sessions/<name>/commit        promote candidate to running
//   POST /sessions/<name>/rollback      discard the candidate
//   DELETE /sessions/<name>             drop the session
//
// Determinism contract: a /diff (or session diff) response body is the
// EXACT byte sequence the one-shot CLI writes to stdout for the same two
// configs and format, at every `--threads` value — request metadata
// travels in X-Campion-* headers, never in the body, so `curl | diff -`
// against the CLI is the CI smoke check. The optional obs envelope
// (`"obs": true` / `?obs=1`) is the one deliberate exception: it wraps the
// report in JSON together with the request's span tree and metrics.
//
// Concurrency model: connection workers parse HTTP in parallel, but the
// diff pipeline itself is serialized through one mutex. That is not a
// cop-out — it is what makes per-request observability sound: the obs
// metrics registry is process-global, so the service resets it, runs the
// request (which still fans out over `--threads` workers *inside*
// ConfigDiff), snapshots, and folds the snapshot into the daemon's
// cumulative metrics. Parallelism across requests would interleave two
// requests' counters with no way to separate them. Throughput comes from
// within-request threading and the cross-request template cache, not from
// overlapping pipelines.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/config_diff.h"
#include "ir/config.h"
#include "server/http.h"
#include "server/template_cache.h"

namespace campion::server {

struct ServiceOptions {
  // Baseline diff options for every request: threads, template on/off,
  // reorder mode. Per-request JSON fields override checks/format only,
  // never the performance knobs (those are fleet configuration).
  core::DiffOptions diff;
  // Cross-request template cache (off = every request builds privately,
  // exactly like the CLI).
  bool cache = true;
  // Template-manager GC: per-template compaction after build plus the LRU
  // byte watermark below. Off = the bench_serve A/B baseline.
  bool gc = true;
  std::size_t gc_watermark_bytes = 256 * 1024 * 1024;
  std::size_t cache_max_entries = 0;  // 0 = unlimited.
};

class DiffService {
 public:
  explicit DiffService(ServiceOptions options);

  // Thread-safe: called concurrently by HttpServer's connection workers.
  HttpResponse Handle(const HttpRequest& request);

  TemplateCache::Stats CacheStats() const { return cache_.GetStats(); }

 private:
  struct Session {
    // Configs are stored as text and re-parsed per diff: parsing is cheap
    // next to the semantic diff, and storing text keeps commit/rollback
    // trivially exact (no IR round-trip).
    std::string running;
    std::string candidate;
    std::string running_vendor = "auto";    // As uploaded (?vendor=).
    std::string candidate_vendor = "auto";
  };

  HttpResponse HandleDiff(const HttpRequest& request);
  HttpResponse HandleMetrics();
  HttpResponse HandleSessions(const HttpRequest& request);

  // Parses, diffs, and renders one comparison under the pipeline mutex,
  // capturing the request's spans and metrics. Returns the full response
  // (including error responses for unparseable configs).
  HttpResponse RunDiff(const std::string& text1, const std::string& vendor1,
                       const std::string& text2, const std::string& vendor2,
                       const core::DiffOptions& options, bool json_format,
                       bool want_obs);

  void FoldMetrics(
      const std::vector<std::pair<std::string, double>>& snapshot);
  void BumpCounter(const std::string& name, double delta = 1.0);

  ServiceOptions options_;
  TemplateCache cache_;

  // Serializes the parse→template→diff→render pipeline (see header
  // comment). Never held while blocking on client I/O.
  std::mutex pipeline_mutex_;

  std::mutex sessions_mutex_;
  std::map<std::string, Session> sessions_;

  // Daemon-cumulative metrics (server.* counters plus every obs metric the
  // requests produced, summed). /metrics renders this map.
  mutable std::mutex metrics_mutex_;
  std::map<std::string, double> cumulative_;
};

}  // namespace campion::server
