#pragma once

// Minimal HTTP/1.1 transport for the campion_serve daemon (docs/daemon.md).
//
// The repo takes no third-party dependencies, so this is a small,
// self-contained server over POSIX sockets: one acceptor thread, a
// `util::ThreadPool` of connection workers, Content-Length framed bodies,
// and keep-alive connections with a receive timeout so an idle client
// cannot pin a worker forever. It deliberately implements only what the
// daemon's API needs — no chunked transfer, no TLS, no compression; put a
// real reverse proxy in front for anything internet-facing.
//
// Shutdown is graceful: Stop() closes the listening socket (unblocking the
// acceptor), marks the server stopping so keep-alive loops finish their
// in-flight request and exit, and drains the worker pool. The SIGTERM
// handler in campion_serve_main.cc funnels into Stop(), which is what the
// CI smoke job exercises.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace campion::server {

struct HttpRequest {
  std::string method;  // "GET", "POST", ... (uppercase as received).
  std::string path;    // Request target before '?', percent-decoded NOT
                       // applied (the API uses plain ASCII paths).
  std::string query;   // Raw query string after '?', empty when absent.
  // Header names lowercased; last occurrence wins (none of the API's
  // headers are list-valued).
  std::map<std::string, std::string> headers;
  std::string body;

  // Value of `name` in the query string ("a=1&b=2"), or `fallback`.
  std::string QueryParam(const std::string& name,
                         const std::string& fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  // Extra response headers (e.g. the X-Campion-* metadata), emitted in
  // insertion order after the standard ones.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

// Standard reason phrase for the handful of status codes the API uses.
const char* StatusReason(int status);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  // `port` 0 asks the kernel for an ephemeral port (tests); port() reports
  // the bound one. `num_workers` is the connection-handling pool size —
  // requests on distinct connections are handled concurrently, one
  // in-flight request per connection.
  HttpServer(std::string bind_address, int port, HttpHandler handler,
             unsigned num_workers);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and starts the acceptor thread. False (with `error`
  // set) when the address cannot be bound.
  bool Start(std::string* error);

  // Graceful shutdown; idempotent. Blocks until the acceptor has exited
  // and every in-flight request has been answered.
  void Stop();

  int port() const { return port_; }
  bool running() const { return running_; }

  // Requests served on an already-used connection — i.e. every request
  // after the first on each keep-alive connection. A persistent client
  // doing R requests over one connection adds R-1. /metrics surfaces this
  // as `server.keepalive_reuses`.
  std::uint64_t keepalive_reuses() const {
    return keepalive_reuses_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::string bind_address_;
  int port_;
  HttpHandler handler_;
  unsigned num_workers_;
  int listen_fd_ = -1;
  bool running_ = false;
  // Set before the listen fd closes; keep-alive loops check it between
  // requests so draining never waits on an idle connection's timeout.
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> keepalive_reuses_{0};
  std::thread acceptor_;
  std::unique_ptr<util::ThreadPool> workers_;
};

// Tiny blocking client for tests, bench_serve, and the docs examples: one
// request per call, Connection: close. Returns false (with `error`) on
// connect/protocol failures; HTTP error statuses are returned in `out`.
struct HttpClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // Lowercased names.
  std::string body;
};
bool HttpFetch(const std::string& host, int port, const std::string& method,
               const std::string& target, const std::string& body,
               HttpClientResponse* out, std::string* error = nullptr);

// Persistent keep-alive client: one TCP connection, many requests. Used by
// the keep-alive tests and by bench_serve, where reconnect latency would
// otherwise pollute the per-request numbers. Not thread-safe; one
// connection per thread.
class HttpClientConnection {
 public:
  HttpClientConnection() = default;
  ~HttpClientConnection();

  HttpClientConnection(const HttpClientConnection&) = delete;
  HttpClientConnection& operator=(const HttpClientConnection&) = delete;

  bool Connect(const std::string& host, int port, std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }

  // Sends one request and reads one Content-Length framed response on the
  // open connection. False (with `error`) on transport failures — the
  // connection is closed and must be Connect()ed again.
  bool Roundtrip(const std::string& method, const std::string& target,
                 const std::string& body, HttpClientResponse* out,
                 std::string* error = nullptr);

  void Close();

 private:
  int fd_ = -1;
  std::string host_;
  std::string buffer_;  // Bytes read past the previous response.
};

}  // namespace campion::server
