#include "server/result_cache.h"

#include <utility>

#include "obs/metrics.h"
#include "util/hash.h"

namespace campion::server {

std::shared_ptr<const ResultCache::Result> ResultCache::Get(
    const std::string& key, std::uint64_t* key_hash) {
  const std::uint64_t digest = util::Fnv1a64(key);
  if (key_hash != nullptr) *key_hash = digest;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    obs::Count("diff.result_cache_misses");
    return nullptr;
  }
  lru_.erase(it->second.lru_position);
  lru_.push_front(key);
  it->second.lru_position = lru_.begin();
  ++stats_.hits;
  ++it->second.hits;
  obs::Count("diff.result_cache_hits");
  return it->second.result;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const Result> result) {
  const std::size_t bytes = key.size() + result->body.size() +
                            result->content_type.size() + sizeof(Result);
  const std::uint64_t digest = util::Fnv1a64(key);
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    // A concurrent miss on the same key computed the same bytes; keep the
    // incumbent and just refresh its LRU position.
    lru_.erase(it->second.lru_position);
    lru_.push_front(key);
    it->second.lru_position = lru_.begin();
    return;
  }
  Entry entry;
  entry.result = std::move(result);
  entry.resident_bytes = bytes;
  entry.key_hash = digest;
  lru_.push_front(key);
  entry.lru_position = lru_.begin();
  stats_.resident_bytes += bytes;
  entries_.emplace(key, std::move(entry));
  stats_.entries = entries_.size();
  EvictIfNeeded();
  obs::MaxGauge("diff.result_cache_resident_bytes",
                static_cast<double>(stats_.resident_bytes));
}

void ResultCache::EvictIfNeeded() {
  auto over_limit = [this] {
    if (options_.max_entries != 0 && entries_.size() > options_.max_entries) {
      return true;
    }
    return options_.max_resident_bytes != 0 &&
           stats_.resident_bytes > options_.max_resident_bytes;
  };
  // Never evict the entry just inserted: a watermark smaller than one
  // result must still serve re-submissions of the current pair.
  while (entries_.size() > 1 && over_limit()) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.resident_bytes -= it->second.resident_bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
    obs::Count("diff.result_cache_evictions");
  }
  stats_.entries = entries_.size();
}

ResultCache::Stats ResultCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<ResultCache::EntryInfo> ResultCache::EntryInfos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EntryInfo> infos;
  infos.reserve(entries_.size());
  for (const std::string& key : lru_) {  // MRU first.
    auto it = entries_.find(key);
    EntryInfo info;
    info.key_hash = it->second.key_hash;
    info.resident_bytes = it->second.resident_bytes;
    info.hits = it->second.hits;
    info.equivalent = it->second.result->equivalent;
    info.differences = it->second.result->differences;
    infos.push_back(info);
  }
  return infos;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  stats_.entries = 0;
  stats_.resident_bytes = 0;
}

}  // namespace campion::server
