#pragma once

// Cross-request encoding-template cache (the daemon's reason to exist).
//
// The one-shot pipeline builds an EncodingTemplate per invocation, sifts it
// when reordering is on, and throws both away at exit — the expensive parts
// of a comparison paid again on every run. A resident daemon can do better:
// the template's content is fully determined by the PR 5 canonical
// structural keys (which prefix lists / community lists / ACL match clauses
// exist, by structure, not by name) plus the community universe that fixes
// the route layout's variable assignment. Two requests whose configs agree
// on those produce byte-identical templates, so the cache keys on exactly
// that and hands the same frozen template to every matching request:
//
//   miss — build the template, sift it once (when the server runs with
//          reordering) and mark-and-compact both managers
//          (EncodingTemplate::Compact) so the resident copy holds only
//          live, densely packed nodes;
//   hit  — return the shared frozen template; the request seeds pair
//          managers from it (ConfigDiff's `external_template`) and skips
//          the build, the sift, and the GC entirely.
//
// Soundness: ConfigDiff consults the template only through key-based
// lookups, and a reduced ordered BDD is canonical per function and
// variable order — so a template built from a *different* config pair with
// the same key is indistinguishable from one built for this pair, and the
// report stays byte-identical to the template-off and CLI paths (pinned by
// tests/server/server_test.cc). The sift witnesses baked into the cached
// template came from the pair that built it; they only shaped the variable
// order, and every order yields the same report.
//
// Residency is bounded two ways: per-template compaction above, and an LRU
// byte watermark across entries — when the resident total (template
// manager MemoryStats) exceeds `max_resident_bytes`, least-recently-used
// entries are dropped (their templates die when the last in-flight request
// releases its shared_ptr). `bench_serve` demonstrates the resulting flat
// memory profile over 100+ distinct-pair requests.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config_diff.h"
#include "encode/encoding_template.h"
#include "ir/config.h"

namespace campion::server {

// The canonical cache key: the ordered community universe exactly as the
// template's route layout consumes it (config1's sorted communities, then
// config2's), followed by the sorted distinct structural keys of both
// configs' prefix lists, community lists, and ACL lines. Everything the
// frozen template's lookup surface depends on, nothing it doesn't (names,
// spans, route-map structure).
std::string TemplateCacheKey(const ir::RouterConfig& config1,
                             const ir::RouterConfig& config2);

class TemplateCache {
 public:
  struct Options {
    // Sift mode applied once per cached template at build time
    // (DiffOptions::ReorderMode mapped through the same helper ConfigDiff
    // uses). kOff skips the sift.
    core::DiffOptions::ReorderMode reorder =
        core::DiffOptions::ReorderMode::kOff;
    double reorder_trigger_ratio = 2.0;
    // Compact template managers after build (EncodingTemplate::Compact)
    // and enforce the byte watermark. Off = the A/B baseline: templates
    // keep their construction garbage and nothing is ever evicted.
    bool gc = true;
    // LRU eviction watermark over the summed resident bytes of all cached
    // templates. 0 = unlimited. Only enforced when `gc` is on.
    std::size_t max_resident_bytes = 256 * 1024 * 1024;
    // Hard cap on entries (0 = unlimited), independent of `gc`.
    std::size_t max_entries = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t resident_bytes = 0;
    // Cumulative GcResult tallies from per-template compactions.
    std::uint64_t gc_reclaimed_nodes = 0;
    std::uint64_t gc_compacted_bytes = 0;
  };

  explicit TemplateCache(Options options) : options_(options) {}

  // Returns the cached template for this pair's key, building it on a
  // miss. `cache_hit`, when non-null, reports which happened; `key_hash`,
  // when non-null, receives the FNV-1a digest of the canonical key (the
  // same digest /debug/cache and the flight recorder expose). The returned
  // pointer keeps the template alive even if eviction drops the entry
  // mid-request. Also records per-request metrics
  // (encode.template_cache_hit / _miss, and on a miss the build/sift/gc
  // spans) into the ambient obs context when tracing is enabled.
  std::shared_ptr<const encode::EncodingTemplate> Get(
      const ir::RouterConfig& config1, const ir::RouterConfig& config2,
      bool* cache_hit = nullptr, std::uint64_t* key_hash = nullptr);

  Stats GetStats() const;

  // Per-entry debug view for `GET /debug/cache`: one row per resident
  // template, most-recently-used first.
  struct EntryInfo {
    std::uint64_t key_hash = 0;     // FNV-1a digest of the canonical key.
    std::size_t resident_bytes = 0;
    std::uint64_t hits = 0;         // Lookups served by this entry.
    std::uint64_t build_seq = 0;    // Monotone build counter (1 = oldest
                                    // build since daemon start) — a clock-
                                    // free stand-in for age.
  };
  std::vector<EntryInfo> EntryInfos() const;

  // Drops every entry (templates survive while requests hold them).
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const encode::EncodingTemplate> tmpl;
    std::size_t resident_bytes = 0;
    std::uint64_t key_hash = 0;
    std::uint64_t hits = 0;
    std::uint64_t build_seq = 0;
    std::list<std::string>::iterator lru_position;
  };

  // Sum of both template managers' MemoryStats totals.
  static std::size_t ResidentBytes(const encode::EncodingTemplate& tmpl);
  void EvictIfNeeded();  // Caller holds mutex_.

  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // Front = most recently used.
  Stats stats_;
  std::uint64_t build_counter_ = 0;
};

}  // namespace campion::server
