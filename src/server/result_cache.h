#pragma once

// Incremental result cache: the fleet-scale re-diff shortcut.
//
// The template cache (template_cache.h) amortizes the encoding build; the
// whole pipeline after it — seeding pair managers, the semantic diff, the
// render — is still paid on every request. For fleet workloads that is the
// dominant cost: a 64-pair batch where one router changed re-pays 63
// identical diffs. This cache stores the RENDERED RESPONSE per pair,
// keyed by the full canonical serialization of both parsed configs
// (encode::ConfigCanonicalKey — PR 5 structural keys plus names, actions,
// declaration order, and source spans) concatenated with the diff-relevant
// options (the check_* set and the output format). A hit skips template
// fetch, diff, and render entirely, paying only the parse (cheap next to
// the semantic diff — the same trade the session store already makes).
//
// Soundness: the map keys on the FULL key string, not a digest, so a hit
// means the parsed IRs and options are literally identical — and parse and
// render are deterministic, so the cached body is byte-for-byte what a
// fresh run would produce. The FNV digest exists only for the flight
// recorder's result_key field and /debug/result_cache. Performance
// knobs (threads, template on/off, reorder) are deliberately NOT part of
// the key: the repo's determinism contract pins the body as byte-identical
// across all of them.
//
// Residency is LRU-bounded by a bytes watermark over the stored bodies +
// keys, mirroring the template cache (never evicting the entry just
// inserted), plus an optional entry cap.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace campion::server {

class ResultCache {
 public:
  struct Options {
    // LRU eviction watermark over stored body + key bytes. 0 = unlimited.
    std::size_t max_resident_bytes = 64 * 1024 * 1024;
    std::size_t max_entries = 0;  // 0 = unlimited.
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t resident_bytes = 0;
  };

  // One cached pair outcome: everything needed to replay the response
  // (body + headers) without re-running the pipeline.
  struct Result {
    std::string body;
    std::string content_type;
    bool equivalent = false;
    std::size_t differences = 0;
    // The template-cache disposition recorded when this result was
    // computed ("hit", "miss", or "off") — replayed in the
    // X-Campion-Template-Cache header so a warm response carries the same
    // provenance the original did.
    std::string template_cache;
    std::uint64_t template_key_hash = 0;
  };

  explicit ResultCache(Options options) : options_(options) {}

  // Looks up the full key; null on a miss. Bumps hit/miss stats. `key_hash`,
  // when non-null, receives the FNV-1a digest of the key either way.
  std::shared_ptr<const Result> Get(const std::string& key,
                                    std::uint64_t* key_hash = nullptr);

  // Inserts a freshly computed result (overwrites a racing duplicate —
  // both race winners computed byte-identical bodies, so either is fine)
  // and enforces the watermark.
  void Put(const std::string& key, std::shared_ptr<const Result> result);

  Stats GetStats() const;

  // Per-entry debug view for `GET /debug/result_cache`, MRU first.
  struct EntryInfo {
    std::uint64_t key_hash = 0;
    std::size_t resident_bytes = 0;
    std::uint64_t hits = 0;
    bool equivalent = false;
    std::size_t differences = 0;
  };
  std::vector<EntryInfo> EntryInfos() const;

  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const Result> result;
    std::size_t resident_bytes = 0;
    std::uint64_t key_hash = 0;
    std::uint64_t hits = 0;
    std::list<std::string>::iterator lru_position;
  };

  void EvictIfNeeded();  // Caller holds mutex_.

  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // Front = most recently used.
  Stats stats_;
};

}  // namespace campion::server
