#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace campion::server {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
// Config files are small; 32 MiB leaves two full configs plus JSON quoting
// headroom while bounding what one connection can make the daemon buffer.
constexpr std::size_t kMaxBodyBytes = 32 * 1024 * 1024;
constexpr int kRecvTimeoutSeconds = 30;

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// Reads until the socket delivers `want` more bytes into `buffer` or the
// peer closes / errors out.
bool ReadMore(int fd, std::string& buffer, std::size_t want) {
  char chunk[16 * 1024];
  while (want > 0) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;  // Closed, timeout, or error.
    buffer.append(chunk, static_cast<std::size_t>(n));
    want -= std::min(want, static_cast<std::size_t>(n));
  }
  return true;
}

bool WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a client that disconnected mid-response must not kill
    // the daemon with SIGPIPE.
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Parses one request out of `buffer` (which holds at least through the
// blank line at `header_end`). Returns false on malformed input.
bool ParseRequestHead(const std::string& head, HttpRequest* out) {
  std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return false;
  const std::string request_line = head.substr(0, line_end);
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  out->method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const std::size_t qmark = target.find('?');
  out->path = target.substr(0, qmark);
  out->query = qmark == std::string::npos ? "" : target.substr(qmark + 1);

  std::size_t pos = line_end + 2;
  while (pos < head.size()) {
    line_end = head.find("\r\n", pos);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(pos, line_end - pos);
    pos = line_end + 2;
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return false;
    std::string name = ToLower(line.substr(0, colon));
    std::size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    out->headers[name] = line.substr(value_start);
  }
  return true;
}

// Parses a response status line plus headers out of `head` (which runs
// through the blank line). False on malformed input.
bool ParseResponseHead(const std::string& head, HttpClientResponse* out) {
  std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return false;
  const std::string status_line = head.substr(0, line_end);
  if (status_line.size() < 12 || status_line.rfind("HTTP/1.", 0) != 0) {
    return false;
  }
  out->status = std::atoi(status_line.substr(9, 3).c_str());
  std::size_t pos = line_end + 2;
  out->headers.clear();
  while (pos < head.size()) {
    line_end = head.find("\r\n", pos);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(pos, line_end - pos);
    pos = line_end + 2;
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    out->headers[ToLower(line.substr(0, colon))] = line.substr(value_start);
  }
  return true;
}

std::string RenderResponse(const HttpResponse& response, bool keep_alive) {
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << ' '
      << StatusReason(response.status) << "\r\n";
  out << "Content-Type: " << response.content_type << "\r\n";
  out << "Content-Length: " << response.body.size() << "\r\n";
  out << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n";
  for (const auto& [name, value] : response.headers) {
    out << name << ": " << value << "\r\n";
  }
  out << "\r\n";
  out << response.body;
  return out.str();
}

}  // namespace

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

std::string HttpRequest::QueryParam(const std::string& name,
                                    const std::string& fallback) const {
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == name) {
      return pair.substr(eq + 1);
    }
    if (eq == std::string::npos && pair == name) return "";
    if (amp == query.size()) break;
    pos = amp + 1;
  }
  return fallback;
}

HttpServer::HttpServer(std::string bind_address, int port,
                       HttpHandler handler, unsigned num_workers)
    : bind_address_(std::move(bind_address)),
      port_(port),
      handler_(std::move(handler)),
      num_workers_(num_workers == 0 ? 1 : num_workers) {}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, bind_address_.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid bind address: " + bind_address_;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (port_ == 0) {  // Report the kernel-assigned ephemeral port.
    socklen_t len = sizeof addr;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      port_ = ntohs(addr.sin_port);
    }
  }
  workers_ = std::make_unique<util::ThreadPool>(num_workers_);
  stopping_ = false;
  running_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (!running_) return;
  stopping_ = true;
  // Closing the listening socket unblocks the acceptor's accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (acceptor_.joinable()) acceptor_.join();
  workers_.reset();  // Drains and joins the connection workers.
  running_ = false;
}

void HttpServer::AcceptLoop() {
  while (!stopping_) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_) break;
      if (errno == EINTR) continue;
      break;  // Listening socket is gone; shut down.
    }
    timeval timeout{};
    timeout.tv_sec = kRecvTimeoutSeconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
    workers_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;
  bool first_request = true;
  while (!stopping_) {
    // Accumulate through the end of the header block.
    std::size_t header_end;
    while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      if (buffer.size() > kMaxHeaderBytes) {
        WriteAll(fd, RenderResponse({400, "text/plain; charset=utf-8", {},
                                     "header block too large\n"},
                                    false));
        ::close(fd);
        return;
      }
      if (!ReadMore(fd, buffer, 1)) {  // Idle close or timeout.
        ::close(fd);
        return;
      }
    }

    HttpRequest request;
    if (!ParseRequestHead(buffer.substr(0, header_end + 2), &request)) {
      WriteAll(fd, RenderResponse({400, "text/plain; charset=utf-8", {},
                                   "malformed request\n"},
                                  false));
      ::close(fd);
      return;
    }
    std::size_t content_length = 0;
    if (auto it = request.headers.find("content-length");
        it != request.headers.end()) {
      content_length = static_cast<std::size_t>(
          std::strtoull(it->second.c_str(), nullptr, 10));
    }
    if (content_length > kMaxBodyBytes) {
      WriteAll(fd, RenderResponse({413, "text/plain; charset=utf-8", {},
                                   "body too large\n"},
                                  false));
      ::close(fd);
      return;
    }
    const std::size_t have = buffer.size() - (header_end + 4);
    if (have < content_length && !ReadMore(fd, buffer, content_length - have)) {
      ::close(fd);
      return;
    }
    request.body = buffer.substr(header_end + 4, content_length);
    buffer.erase(0, header_end + 4 + content_length);
    if (!first_request) {
      keepalive_reuses_.fetch_add(1, std::memory_order_relaxed);
    }
    first_request = false;

    bool keep_alive = true;
    if (auto it = request.headers.find("connection");
        it != request.headers.end() && ToLower(it->second) == "close") {
      keep_alive = false;
    }
    if (stopping_) keep_alive = false;

    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception& error) {
      response.status = 500;
      response.body = std::string("internal error: ") + error.what() + "\n";
    }
    if (!WriteAll(fd, RenderResponse(response, keep_alive)) || !keep_alive) {
      break;
    }
  }
  ::close(fd);
}

bool HttpFetch(const std::string& host, int port, const std::string& method,
               const std::string& target, const std::string& body,
               HttpClientResponse* out, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid host address: " + host;
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  std::ostringstream request;
  request << method << ' ' << target << " HTTP/1.1\r\n"
          << "Host: " << host << "\r\n"
          << "Content-Length: " << body.size() << "\r\n"
          << "Connection: close\r\n\r\n"
          << body;
  if (!WriteAll(fd, request.str())) {
    if (error != nullptr) *error = "send failed";
    ::close(fd);
    return false;
  }
  std::string data;
  char chunk[16 * 1024];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0) {
    data.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = data.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (error != nullptr) *error = "truncated response";
    return false;
  }
  if (!ParseResponseHead(data.substr(0, header_end + 2), out)) {
    if (error != nullptr) *error = "malformed status line";
    return false;
  }
  out->body = data.substr(header_end + 4);
  return true;
}

HttpClientConnection::~HttpClientConnection() { Close(); }

void HttpClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool HttpClientConnection::Connect(const std::string& host, int port,
                                   std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid host address: " + host;
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    Close();
    return false;
  }
  int enable = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
  host_ = host;
  return true;
}

bool HttpClientConnection::Roundtrip(const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     HttpClientResponse* out,
                                     std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  std::ostringstream request;
  // No Connection header: HTTP/1.1 defaults to keep-alive, which is the
  // whole point of this client.
  request << method << ' ' << target << " HTTP/1.1\r\n"
          << "Host: " << host_ << "\r\n"
          << "Content-Length: " << body.size() << "\r\n\r\n"
          << body;
  if (!WriteAll(fd_, request.str())) {
    if (error != nullptr) *error = "send failed";
    Close();
    return false;
  }
  std::size_t header_end;
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (!ReadMore(fd_, buffer_, 1)) {
      if (error != nullptr) *error = "truncated response";
      Close();
      return false;
    }
  }
  if (!ParseResponseHead(buffer_.substr(0, header_end + 2), out)) {
    if (error != nullptr) *error = "malformed status line";
    Close();
    return false;
  }
  std::size_t content_length = 0;
  if (auto it = out->headers.find("content-length");
      it != out->headers.end()) {
    content_length = static_cast<std::size_t>(
        std::strtoull(it->second.c_str(), nullptr, 10));
  }
  const std::size_t have = buffer_.size() - (header_end + 4);
  if (have < content_length &&
      !ReadMore(fd_, buffer_, content_length - have)) {
    if (error != nullptr) *error = "truncated body";
    Close();
    return false;
  }
  out->body = buffer_.substr(header_end + 4, content_length);
  buffer_.erase(0, header_end + 4 + content_length);
  if (auto it = out->headers.find("connection");
      it != out->headers.end() && ToLower(it->second) == "close") {
    Close();  // Server is done with this connection (e.g. shutdown).
  }
  return true;
}

}  // namespace campion::server
