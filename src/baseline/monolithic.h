#pragma once

// A Minesweeper-style *monolithic* equivalence checker, used as the
// baseline Campion is compared against (§2 of the paper).
//
// Like Minesweeper, this checker builds one logical representation of each
// whole component, asks "is there any input treated differently?", and
// reports a single concrete counterexample. Repeated queries exclude the
// previously returned counterexamples, reproducing the "ask the solver
// again" workflow the paper evaluates (which needed 7 and 27 samples to
// cover the difference classes of Figure 1). Our substrate is the same BDD
// engine Campion uses rather than an SMT solver — the counterexample
// *interface* is what is being compared, not the decision procedure — and
// the model order is deterministic (see CounterexampleOrder).
//
// What this baseline deliberately does NOT do — this is the paper's point:
//   * no set-of-all-inputs output (no header localization),
//   * no responsible-configuration-lines output (no text localization),
//   * one difference at a time, with no difference-class structure.

#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "encode/packet.h"
#include "encode/route_adv.h"
#include "ir/config.h"

namespace campion::baseline {

enum class CounterexampleOrder {
  // The first satisfying path of the difference BDD (depth-first,
  // high-branch first) — an arbitrary-but-deterministic model, like an SMT
  // solver's.
  kFirstPath,
  // The lexicographically least satisfying assignment. Worst case for
  // coverage experiments: successive models differ in the lowest bits.
  kLexMin,
};

struct RouteMapCounterexample {
  encode::RouteAdvExample advertisement;
  bool accepted1 = false;
  bool accepted2 = false;

  // Renders like the paper's Table 3: the received route and which router
  // ends up forwarding.
  std::string ToString(const std::string& router1,
                       const std::string& router2) const;
};

class MonolithicRouteMapChecker {
 public:
  MonolithicRouteMapChecker(const ir::RouterConfig& config1,
                            const ir::RouteMap& map1,
                            const ir::RouterConfig& config2,
                            const ir::RouteMap& map2,
                            CounterexampleOrder order =
                                CounterexampleOrder::kFirstPath);

  bool Equivalent() const { return difference_ == bdd::kFalse; }

  // The next counterexample, or nullopt when every concrete difference has
  // been excluded. Each returned advertisement is excluded from future
  // queries (all encodings of it, exactly as an SMT blocking clause would).
  std::optional<RouteMapCounterexample> Next();

  // For experiments: the two "ground truth" difference sets are exposed so
  // a harness can count how many counterexamples are needed to cover them.
  bdd::BddManager& manager() { return mgr_; }
  const encode::RouteAdvLayout& layout() const { return layout_; }
  bdd::BddRef difference_set() const { return difference_; }
  bdd::BddRef remaining() const { return remaining_; }

 private:
  bdd::BddManager mgr_;
  encode::RouteAdvLayout layout_;
  // accepts1/accepts2 for deciding the verdict of a model.
  bdd::BddRef accepts1_ = bdd::kFalse;
  bdd::BddRef accepts2_ = bdd::kFalse;
  bdd::BddRef difference_ = bdd::kFalse;
  bdd::BddRef remaining_ = bdd::kFalse;
  CounterexampleOrder order_;
};

struct AclCounterexample {
  encode::PacketExample packet;
  bool permitted1 = false;
  bool permitted2 = false;

  std::string ToString(const std::string& router1,
                       const std::string& router2) const;
};

class MonolithicAclChecker {
 public:
  MonolithicAclChecker(const ir::Acl& acl1, const ir::Acl& acl2,
                       CounterexampleOrder order =
                           CounterexampleOrder::kFirstPath);

  bool Equivalent() const { return difference_ == bdd::kFalse; }
  std::optional<AclCounterexample> Next();

  bdd::BddManager& manager() { return mgr_; }
  const encode::PacketLayout& layout() const { return layout_; }
  bdd::BddRef difference_set() const { return difference_; }

 private:
  bdd::BddManager mgr_;
  encode::PacketLayout layout_;
  bdd::BddRef permits1_ = bdd::kFalse;
  bdd::BddRef permits2_ = bdd::kFalse;
  bdd::BddRef difference_ = bdd::kFalse;
  bdd::BddRef remaining_ = bdd::kFalse;
  CounterexampleOrder order_;
};

// The static-route analogue of Table 5: a single packet whose forwarding
// differs, with no indication of which route or configuration line caused
// it.
struct StaticRouteCounterexample {
  util::Ipv4Address dst_ip;
  bool forwards1 = false;
  bool forwards2 = false;

  std::string ToString(const std::string& router1,
                       const std::string& router2) const;
};

std::optional<StaticRouteCounterexample> MonolithicStaticRouteCheck(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2);

}  // namespace campion::baseline
