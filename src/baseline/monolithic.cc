#include "baseline/monolithic.h"

#include "core/semantic_diff.h"
#include "encode/policy_encoder.h"

namespace campion::baseline {
namespace {

// The monolithic transfer relation: for each path class, whether it
// accepts, plus an "action signature" so transform differences (e.g. a
// local-pref mismatch) also count — Minesweeper models the full route
// output, so two accepts with different attribute updates differ.
struct ComponentRelation {
  bdd::BddRef accepts = bdd::kFalse;
  std::vector<core::RouteMapPathClass> classes;
};

ComponentRelation BuildRelation(encode::RouteAdvLayout& layout,
                                const ir::RouterConfig& config,
                                const ir::RouteMap& map) {
  bdd::BddManager& mgr = layout.manager();
  encode::PolicyEncoder encoder(layout, config);
  ComponentRelation relation;
  relation.classes = core::BuildRouteMapClasses(layout, encoder, map);
  for (const auto& cls : relation.classes) {
    if (cls.action.accept) {
      relation.accepts = mgr.Or(relation.accepts, cls.predicate);
    }
  }
  return relation;
}

}  // namespace

MonolithicRouteMapChecker::MonolithicRouteMapChecker(
    const ir::RouterConfig& config1, const ir::RouteMap& map1,
    const ir::RouterConfig& config2, const ir::RouteMap& map2,
    CounterexampleOrder order)
    : layout_(mgr_,
              [&] {
                std::vector<util::Community> communities =
                    config1.AllCommunities();
                auto more = config2.AllCommunities();
                communities.insert(communities.end(), more.begin(),
                                   more.end());
                return communities;
              }()),
      order_(order) {
  ComponentRelation r1 = BuildRelation(layout_, config1, map1);
  ComponentRelation r2 = BuildRelation(layout_, config2, map2);
  accepts1_ = r1.accepts;
  accepts2_ = r2.accepts;

  // The difference relation: any input on which the two transfer functions
  // disagree — on accept/reject, or on the attribute transform applied.
  difference_ = mgr_.Xor(r1.accepts, r2.accepts);
  for (const auto& c1 : r1.classes) {
    for (const auto& c2 : r2.classes) {
      if (c1.action == c2.action) continue;
      if (!c1.action.accept || !c2.action.accept) continue;  // XOR covers.
      difference_ =
          mgr_.Or(difference_, mgr_.And(c1.predicate, c2.predicate));
    }
  }
  remaining_ = difference_;
}

std::optional<RouteMapCounterexample> MonolithicRouteMapChecker::Next() {
  std::optional<bdd::Cube> cube =
      order_ == CounterexampleOrder::kLexMin ? mgr_.MinSat(remaining_)
                                             : mgr_.AnySat(remaining_);
  if (!cube) return std::nullopt;
  RouteMapCounterexample counterexample;
  counterexample.advertisement = layout_.Decode(*cube);

  // Verdicts: evaluate the concrete advertisement against each relation by
  // building its exact-encoding predicate.
  bdd::BddRef concrete =
      layout_.MatchExactPrefix(counterexample.advertisement.prefix);
  for (const auto& community : layout_.communities()) {
    bool carried = false;
    for (const auto& c : counterexample.advertisement.communities) {
      if (c == community) carried = true;
    }
    bdd::BddRef has = layout_.HasCommunity(community);
    concrete = mgr_.And(concrete, carried ? has : mgr_.Not(has));
  }
  concrete = mgr_.And(concrete, layout_.TagEquals(
                                    counterexample.advertisement.tag));
  concrete = mgr_.And(
      concrete, layout_.ProtocolIs(counterexample.advertisement.protocol));
  counterexample.accepted1 = mgr_.Intersects(concrete, accepts1_);
  counterexample.accepted2 = mgr_.Intersects(concrete, accepts2_);

  // Exclude every encoding of this concrete advertisement, like an SMT
  // blocking clause over the model's relevant variables.
  remaining_ = mgr_.Diff(remaining_, concrete);
  return counterexample;
}

std::string RouteMapCounterexample::ToString(const std::string& router1,
                                             const std::string& router2) const {
  std::string out;
  out += "Route received (" + router1 + "): " + advertisement.ToString() +
         "\n";
  out += "Route received (" + router2 + "): " + advertisement.ToString() +
         "\n";
  out += "Packet dstIp: " + advertisement.prefix.address().ToString() + "\n";
  auto verdict = [](bool accepted) {
    return accepted ? std::string("forwards (BGP)")
                    : std::string("does not forward");
  };
  out += "Forwarding: " + router1 + " " + verdict(accepted1) + ", " +
         router2 + " " + verdict(accepted2) + "\n";
  return out;
}

MonolithicAclChecker::MonolithicAclChecker(const ir::Acl& acl1,
                                           const ir::Acl& acl2,
                                           CounterexampleOrder order)
    : layout_(mgr_), order_(order) {
  auto permits = [&](const ir::Acl& acl) {
    bdd::BddRef permitted = mgr_.False();
    bdd::BddRef remaining = mgr_.True();
    for (const auto& line : acl.lines) {
      bdd::BddRef here = mgr_.And(remaining, layout_.MatchLine(line));
      if (line.action == ir::LineAction::kPermit) {
        permitted = mgr_.Or(permitted, here);
      }
      remaining = mgr_.Diff(remaining, here);
    }
    return permitted;
  };
  permits1_ = permits(acl1);
  permits2_ = permits(acl2);
  difference_ = mgr_.Xor(permits1_, permits2_);
  remaining_ = difference_;
}

std::optional<AclCounterexample> MonolithicAclChecker::Next() {
  std::optional<bdd::Cube> cube =
      order_ == CounterexampleOrder::kLexMin ? mgr_.MinSat(remaining_)
                                             : mgr_.AnySat(remaining_);
  if (!cube) return std::nullopt;
  AclCounterexample counterexample;
  counterexample.packet = layout_.Decode(*cube);

  // A packet is a total assignment; build its exact predicate.
  const encode::PacketExample& p = counterexample.packet;
  bdd::BddRef concrete = mgr_.True();
  concrete = mgr_.And(concrete,
                      layout_.MatchSrc(util::IpWildcard(p.src_ip)));
  concrete = mgr_.And(concrete,
                      layout_.MatchDst(util::IpWildcard(p.dst_ip)));
  concrete = mgr_.And(concrete, layout_.ProtocolIs(p.protocol));
  concrete = mgr_.And(concrete,
                      layout_.SrcPortIn({p.src_port, p.src_port}));
  concrete = mgr_.And(concrete,
                      layout_.DstPortIn({p.dst_port, p.dst_port}));
  concrete = mgr_.And(concrete, layout_.IcmpTypeIs(p.icmp_type));

  counterexample.permitted1 = mgr_.Intersects(concrete, permits1_);
  counterexample.permitted2 = mgr_.Intersects(concrete, permits2_);
  remaining_ = mgr_.Diff(remaining_, concrete);
  return counterexample;
}

std::string AclCounterexample::ToString(const std::string& router1,
                                        const std::string& router2) const {
  auto verdict = [](bool permitted) {
    return permitted ? std::string("permits") : std::string("denies");
  };
  return "Packet: " + packet.ToString() + "\nForwarding: " + router1 + " " +
         verdict(permitted1) + ", " + router2 + " " + verdict(permitted2) +
         "\n";
}

std::optional<StaticRouteCounterexample> MonolithicStaticRouteCheck(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2) {
  // Monolithic view: a packet is forwarded by a static route if some
  // configured route's prefix covers its destination. Report one address
  // covered on one side only — and nothing about which route or line.
  auto covered_by = [](const ir::RouterConfig& config,
                       util::Ipv4Address ip) {
    for (const auto& route : config.static_routes) {
      if (route.prefix.Contains(ip)) return true;
    }
    return false;
  };
  for (const auto& route : config1.static_routes) {
    util::Ipv4Address probe = route.prefix.address();
    if (!covered_by(config2, probe)) {
      return StaticRouteCounterexample{probe, true, false};
    }
  }
  for (const auto& route : config2.static_routes) {
    util::Ipv4Address probe = route.prefix.address();
    if (!covered_by(config1, probe)) {
      return StaticRouteCounterexample{probe, false, true};
    }
  }
  return std::nullopt;
}

std::string StaticRouteCounterexample::ToString(
    const std::string& router1, const std::string& router2) const {
  auto verdict = [](bool forwards) {
    return forwards ? std::string("forwards (static)")
                    : std::string("does not forward");
  };
  return "Packet dstIp: " + dst_ip.ToString() + "\nForwarding: " + router1 +
         " " + verdict(forwards1) + ", " + router2 + " " +
         verdict(forwards2) + "\n";
}

}  // namespace campion::baseline
