#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace campion::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  num_threads = std::max(1u, num_threads);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

unsigned ResolveThreadCount(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void RunParallel(unsigned num_threads, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  num_threads = ResolveThreadCount(num_threads);
  if (num_threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::exception_ptr> errors(n);
  {
    ThreadPool pool(std::min<std::size_t>(num_threads, n));
    for (std::size_t i = 0; i < n; ++i) {
      pool.Submit([&, i] {
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.Wait();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace campion::util
