#pragma once

// FNV-1a 64-bit: the repo's one string digest. Used where a stable,
// dependency-free fingerprint of a potentially large key is wanted in
// logs and debug endpoints (e.g. the daemon's template-cache key digests)
// — NOT a cryptographic hash, and not for adversarial inputs.

#include <cstdint>
#include <string_view>

namespace campion::util {

constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

constexpr std::uint64_t Fnv1a64(std::string_view data) {
  std::uint64_t hash = kFnvOffsetBasis;
  for (char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace campion::util
