#pragma once

// Prefix ranges, the vocabulary of HeaderLocalize (§3.2 of the paper).
//
// A prefix range pairs a prefix with a range of prefix lengths. The range
// (1.2.0.0/16, 16-32) denotes every prefix whose address matches 1.2.0.0/16
// and whose length lies in [16, 32]. Prefix lists in both Cisco ("le"/"ge")
// and Juniper ("prefix-length-range", "orlonger", "upto") compile to prefix
// ranges, and Campion reports difference header spaces as unions and
// differences of these ranges. Ranges are family-tagged (the base prefix
// carries its family); ranges of different families never intersect or
// contain one another.

#include <optional>
#include <string>
#include <vector>

#include "util/ip.h"

namespace campion::util {

class PrefixRange {
 public:
  constexpr PrefixRange() = default;
  constexpr PrefixRange(IpPrefix prefix, int low, int high)
      : prefix_(prefix), low_(low), high_(high) {}

  // The range matching exactly one prefix.
  constexpr explicit PrefixRange(IpPrefix prefix)
      : PrefixRange(prefix, prefix.length(), prefix.length()) {}

  // The universe U = (0.0.0.0/0, 0-32): every IPv4 prefix.
  static constexpr PrefixRange Universe() {
    return PrefixRange(Prefix(Ipv4Address(0), 0), 0, 32);
  }
  // The all-prefixes range of either family.
  static constexpr PrefixRange UniverseOf(AddressFamily family) {
    return PrefixRange(IpPrefix(family, U128(), 0), 0,
                       MaxPrefixLength(family));
  }

  constexpr const IpPrefix& prefix() const { return prefix_; }
  constexpr AddressFamily family() const { return prefix_.family(); }
  constexpr int low() const { return low_; }
  constexpr int high() const { return high_; }

  // A range is empty when no length in [low, high] is both >= the base
  // prefix length (a member must be a subnet of the base) and <= the
  // family's maximum length.
  constexpr bool IsEmpty() const {
    return EffectiveLow() > EffectiveHigh();
  }

  // Membership: prefix p is in this range iff its address matches our base
  // prefix and its length falls inside [low, high].
  constexpr bool Contains(const IpPrefix& p) const {
    return p.length() >= low_ && p.length() <= high_ &&
           prefix_.Contains(p);
  }

  // Containment between ranges: every member of `other` is a member of
  // this range. Empty ranges are contained in everything.
  bool ContainsRange(const PrefixRange& other) const;

  // Intersection of the two member sets, expressible as a prefix range
  // whenever it is non-empty (the base prefixes are tree-ordered).
  std::optional<PrefixRange> Intersect(const PrefixRange& other) const;

  // Renders as "10.9.0.0/16 : 16-32", matching the paper's tables.
  std::string ToString() const;

  friend constexpr auto operator<=>(const PrefixRange&,
                                    const PrefixRange&) = default;

 private:
  constexpr int EffectiveLow() const {
    return low_ < prefix_.length() ? prefix_.length() : low_;
  }
  constexpr int EffectiveHigh() const {
    const int max = MaxPrefixLength(prefix_.family());
    return high_ > max ? max : high_;
  }

  IpPrefix prefix_;
  int low_ = 0;
  int high_ = 0;
};

// A term of HeaderLocalize output: a positive range minus zero or more
// subtracted ranges, e.g. "B - D". After the nested-difference flattening
// pass the subtracted ranges are plain ranges (no further nesting).
struct PrefixRangeTerm {
  PrefixRange include;
  std::vector<PrefixRange> exclude;

  std::string ToString() const;
  friend auto operator<=>(const PrefixRangeTerm&,
                          const PrefixRangeTerm&) = default;
};

}  // namespace campion::util
