#pragma once

// Plain-text table rendering for Campion's Present stage. The paper's
// difference reports (Tables 2, 4, 7) are two-column "field | router1 |
// router2" tables with multi-line cells; this renders them with box-drawing
// in fixed-width text.

#include <string>
#include <vector>

namespace campion::util {

class TextTable {
 public:
  // `columns` are the header labels; the first column is the field name.
  explicit TextTable(std::vector<std::string> columns);

  // Adds a row; each cell may contain embedded newlines.
  void AddRow(std::vector<std::string> cells);

  // Renders with aligned columns and +---+ separators.
  std::string Render() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Splits on '\n'. A trailing newline does not produce an empty final line;
// an empty string produces one empty line.
std::vector<std::string> SplitLines(const std::string& text);

// Joins with the given separator.
std::string JoinLines(const std::vector<std::string>& lines,
                      const std::string& sep);

}  // namespace campion::util
