#pragma once

// IPv4 addresses, network prefixes, and wildcard masks.
//
// These are the basic value types used throughout Campion: configurations
// match on prefixes (route maps, prefix lists, static routes) and on
// address/wildcard pairs (Cisco extended ACLs).

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace campion::util {

// An IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t bits) : bits_(bits) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  // Parses dotted-quad notation ("10.9.0.0"). Returns nullopt on any
  // malformed input (out-of-range octet, missing dot, trailing junk).
  static std::optional<Ipv4Address> Parse(std::string_view text);

  constexpr std::uint32_t bits() const { return bits_; }
  std::string ToString() const;

  // The i-th bit counting from the most significant (bit 0 is the top bit).
  constexpr bool Bit(int i) const { return (bits_ >> (31 - i)) & 1u; }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t bits_ = 0;
};

// The network mask with `len` leading one bits.
constexpr std::uint32_t MaskBits(int len) {
  return len <= 0 ? 0u : (len >= 32 ? ~0u : ~0u << (32 - len));
}

// Returns the prefix length if `mask` is a contiguous netmask
// (255.255.254.0 etc.), nullopt otherwise.
std::optional<int> MaskToLength(std::uint32_t mask);

// An IPv4 prefix: address plus length, with host bits always zeroed so that
// equal prefixes compare equal.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4Address addr, int length)
      : addr_(addr.bits() & MaskBits(length)), length_(length) {}

  // Parses "a.b.c.d/len". Returns nullopt on malformed input.
  static std::optional<Prefix> Parse(std::string_view text);

  constexpr Ipv4Address address() const { return addr_; }
  constexpr int length() const { return length_; }
  std::string ToString() const;

  // True if `addr` lies inside this prefix.
  constexpr bool Contains(Ipv4Address addr) const {
    return (addr.bits() & MaskBits(length_)) == addr_.bits();
  }

  // True if `other` is a (non-strict) subnet of this prefix.
  constexpr bool Contains(const Prefix& other) const {
    return other.length_ >= length_ && Contains(other.addr_);
  }

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Address addr_;
  int length_ = 0;
};

// A Cisco-style address/wildcard pair ("9.140.0.0 0.0.1.255"). Wildcard bits
// set to one are "don't care". Unlike prefixes the don't-care bits need not
// be contiguous, though in practice they almost always are.
class IpWildcard {
 public:
  constexpr IpWildcard() = default;
  constexpr IpWildcard(Ipv4Address addr, std::uint32_t wildcard_bits)
      : addr_(addr.bits() & ~wildcard_bits), wildcard_(wildcard_bits) {}
  // A wildcard that matches exactly the given prefix.
  constexpr explicit IpWildcard(const Prefix& p)
      : IpWildcard(p.address(), ~MaskBits(p.length())) {}
  // A wildcard matching exactly one address.
  constexpr explicit IpWildcard(Ipv4Address host) : IpWildcard(host, 0) {}

  static constexpr IpWildcard Any() {
    return IpWildcard(Ipv4Address(0), ~0u);
  }

  constexpr Ipv4Address address() const { return addr_; }
  constexpr std::uint32_t wildcard_bits() const { return wildcard_; }

  constexpr bool Matches(Ipv4Address a) const {
    return (a.bits() | wildcard_) == (addr_.bits() | wildcard_);
  }
  constexpr bool IsAny() const { return wildcard_ == ~0u; }

  // If the wildcard is a contiguous suffix of don't-care bits, the
  // equivalent prefix.
  std::optional<Prefix> AsPrefix() const;

  std::string ToString() const;

  friend constexpr auto operator<=>(const IpWildcard&,
                                    const IpWildcard&) = default;

 private:
  Ipv4Address addr_;
  std::uint32_t wildcard_ = 0;
};

}  // namespace campion::util
