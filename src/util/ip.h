#pragma once

// IP addresses, network prefixes, and wildcard masks — IPv4 and IPv6.
//
// These are the basic value types used throughout Campion: configurations
// match on prefixes (route maps, prefix lists, static routes) and on
// address/wildcard pairs (Cisco extended ACLs). The original types
// (Ipv4Address, Prefix, IpWildcard) are 32-bit; the width-parametric layer
// (Ipv6Address, Prefix6, and the family-tagged IpAddress/IpPrefix) carries
// both families through the encoder on the same code paths. All-IPv4
// collections order identically whether stored as Prefix or IpPrefix, so
// report output is unchanged for v4-only workloads.

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "util/u128.h"

namespace campion::util {

enum class AddressFamily { kIpv4, kIpv6 };

// Header width (and maximum prefix length) of an address family.
constexpr int AddressWidth(AddressFamily family) {
  return family == AddressFamily::kIpv4 ? 32 : 128;
}
constexpr int MaxPrefixLength(AddressFamily family) {
  return AddressWidth(family);
}

// An IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t bits) : bits_(bits) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  // Parses dotted-quad notation ("10.9.0.0"). Returns nullopt on any
  // malformed input (out-of-range octet, leading-zero octet, missing dot,
  // trailing junk).
  static std::optional<Ipv4Address> Parse(std::string_view text);

  constexpr std::uint32_t bits() const { return bits_; }
  std::string ToString() const;

  // The i-th bit counting from the most significant (bit 0 is the top bit).
  constexpr bool Bit(int i) const { return (bits_ >> (31 - i)) & 1u; }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t bits_ = 0;
};

// An IPv6 address stored as a 128-bit value in host bit order.
class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  constexpr explicit Ipv6Address(U128 bits) : bits_(bits) {}

  // Parses RFC 4291 text ("2001:db8::1", "::ffff:10.0.0.1" with an embedded
  // dotted-quad in the final position). Returns nullopt on malformed input.
  static std::optional<Ipv6Address> Parse(std::string_view text);

  constexpr U128 bits() const { return bits_; }
  // Canonical RFC 5952 text: lowercase hex, the longest (leftmost on ties)
  // run of two or more zero groups compressed to "::".
  std::string ToString() const;

  // The i-th bit counting from the most significant (bit 0 is the top bit).
  constexpr bool Bit(int i) const { return bits_.Bit(127 - i); }

  friend constexpr auto operator<=>(const Ipv6Address&,
                                    const Ipv6Address&) = default;

 private:
  U128 bits_;
};

// The network mask with `len` leading one bits (32-bit form).
constexpr std::uint32_t MaskBits(int len) {
  return len <= 0 ? 0u : (len >= 32 ? ~0u : ~0u << (32 - len));
}

// The mask with `len` leading one bits inside a `width`-bit field,
// right-aligned at bit 0 (so for width 32 it equals MaskBits(len)).
constexpr U128 MaskBitsWide(int len, int width) {
  if (len <= 0) return U128();
  if (len >= width) return U128::Ones(width);
  return U128::Ones(width) ^ U128::Ones(width - len);
}

// Returns the prefix length if `mask` is a contiguous netmask
// (255.255.254.0 etc.), nullopt otherwise.
std::optional<int> MaskToLength(std::uint32_t mask);

// Width-parametric form of MaskToLength over a `width`-bit mask.
std::optional<int> MaskToLengthWide(U128 mask, int width);

// An IPv4 prefix: address plus length, with host bits always zeroed so that
// equal prefixes compare equal.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4Address addr, int length)
      : addr_(addr.bits() & MaskBits(length)), length_(length) {}

  // Parses "a.b.c.d/len". Returns nullopt on malformed input.
  static std::optional<Prefix> Parse(std::string_view text);

  constexpr Ipv4Address address() const { return addr_; }
  constexpr int length() const { return length_; }
  std::string ToString() const;

  // True if `addr` lies inside this prefix.
  constexpr bool Contains(Ipv4Address addr) const {
    return (addr.bits() & MaskBits(length_)) == addr_.bits();
  }

  // True if `other` is a (non-strict) subnet of this prefix.
  constexpr bool Contains(const Prefix& other) const {
    return other.length_ >= length_ && Contains(other.addr_);
  }

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Address addr_;
  int length_ = 0;
};

// An IPv6 prefix: address plus length, host bits zeroed.
class Prefix6 {
 public:
  constexpr Prefix6() = default;
  constexpr Prefix6(Ipv6Address addr, int length)
      : addr_(addr.bits() & MaskBitsWide(length, 128)), length_(length) {}

  // Parses "addr/len". Returns nullopt on malformed input.
  static std::optional<Prefix6> Parse(std::string_view text);

  constexpr Ipv6Address address() const { return addr_; }
  constexpr int length() const { return length_; }
  std::string ToString() const;

  constexpr bool Contains(Ipv6Address addr) const {
    return (addr.bits() & MaskBitsWide(length_, 128)) == addr_.bits();
  }

  friend constexpr auto operator<=>(const Prefix6&, const Prefix6&) = default;

 private:
  Ipv6Address addr_;
  int length_ = 0;
};

// A family-tagged address. IPv4 values occupy the low 32 bits.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr IpAddress(Ipv4Address a)  // NOLINT(runtime/explicit)
      : bits_(a.bits()) {}
  constexpr IpAddress(Ipv6Address a)  // NOLINT(runtime/explicit)
      : bits_(a.bits()), family_(AddressFamily::kIpv6) {}

  constexpr AddressFamily family() const { return family_; }
  constexpr U128 bits() const { return bits_; }
  constexpr Ipv4Address V4() const {
    return Ipv4Address(static_cast<std::uint32_t>(bits_.lo()));
  }
  constexpr Ipv6Address V6() const { return Ipv6Address(bits_); }

  std::string ToString() const;

  friend constexpr auto operator<=>(const IpAddress&,
                                    const IpAddress&) = default;

 private:
  U128 bits_;
  AddressFamily family_ = AddressFamily::kIpv4;
};

// A family-tagged prefix. Implicitly constructible from Prefix/Prefix6 so
// width-agnostic layers (PrefixRange, layouts) accept both; all-IPv4 sets
// order exactly as sets of Prefix did (family compares equal, then bits
// then length — the same key Prefix uses).
class IpPrefix {
 public:
  constexpr IpPrefix() = default;
  constexpr IpPrefix(const Prefix& p)  // NOLINT(runtime/explicit)
      : bits_(p.address().bits()), length_(p.length()) {}
  constexpr IpPrefix(const Prefix6& p)  // NOLINT(runtime/explicit)
      : bits_(p.address().bits()),
        length_(p.length()),
        family_(AddressFamily::kIpv6) {}
  constexpr IpPrefix(AddressFamily family, U128 bits, int length)
      : bits_(bits & MaskBitsWide(length, AddressWidth(family))),
        length_(length),
        family_(family) {}

  // Parses either family ("10.0.0.0/8" or "2001:db8::/32").
  static std::optional<IpPrefix> Parse(std::string_view text);

  constexpr AddressFamily family() const { return family_; }
  constexpr int length() const { return length_; }
  constexpr IpAddress address() const {
    return family_ == AddressFamily::kIpv4
               ? IpAddress(Ipv4Address(static_cast<std::uint32_t>(bits_.lo())))
               : IpAddress(Ipv6Address(bits_));
  }
  constexpr Prefix V4() const {
    return Prefix(Ipv4Address(static_cast<std::uint32_t>(bits_.lo())),
                  length_);
  }
  constexpr Prefix6 V6() const { return Prefix6(Ipv6Address(bits_), length_); }

  std::string ToString() const;

  // True if `other` is a (non-strict) subnet of this prefix.
  constexpr bool Contains(const IpPrefix& other) const {
    return family_ == other.family_ && other.length_ >= length_ &&
           (other.bits_ &
            MaskBitsWide(length_, AddressWidth(family_))) == bits_;
  }

  friend constexpr auto operator<=>(const IpPrefix&,
                                    const IpPrefix&) = default;

 private:
  U128 bits_;
  int length_ = 0;
  AddressFamily family_ = AddressFamily::kIpv4;
};

// A Cisco-style address/wildcard pair ("9.140.0.0 0.0.1.255"). Wildcard bits
// set to one are "don't care". Unlike prefixes the don't-care bits need not
// be contiguous, though in practice they almost always are. Either family;
// IPv6 ACL matches (which are prefix-shaped in both vendors' syntax) store
// the equivalent 128-bit pair.
class IpWildcard {
 public:
  constexpr IpWildcard() = default;
  constexpr IpWildcard(Ipv4Address addr, std::uint32_t wildcard_bits)
      : addr_(addr.bits() & ~wildcard_bits), wildcard_(wildcard_bits) {}
  // A wildcard that matches exactly the given prefix.
  constexpr explicit IpWildcard(const Prefix& p)
      : IpWildcard(p.address(), ~MaskBits(p.length())) {}
  // A wildcard matching exactly one address.
  constexpr explicit IpWildcard(Ipv4Address host) : IpWildcard(host, 0) {}
  // IPv6 forms.
  constexpr IpWildcard(Ipv6Address addr, U128 wildcard_bits)
      : addr_(addr.bits() & ~wildcard_bits),
        wildcard_(wildcard_bits),
        family_(AddressFamily::kIpv6) {}
  constexpr explicit IpWildcard(const Prefix6& p)
      : IpWildcard(p.address(),
                   U128::Ones(128) ^ MaskBitsWide(p.length(), 128)) {}
  constexpr explicit IpWildcard(Ipv6Address host) : IpWildcard(host, U128()) {}
  // A host wildcard of either family.
  constexpr explicit IpWildcard(const IpAddress& host)
      : addr_(host.bits()), wildcard_(U128()), family_(host.family()) {}

  static constexpr IpWildcard Any() {
    return IpWildcard(Ipv4Address(0), ~0u);
  }
  static constexpr IpWildcard AnyOf(AddressFamily family) {
    return family == AddressFamily::kIpv4
               ? Any()
               : IpWildcard(Ipv6Address(), U128::Ones(128));
  }

  constexpr AddressFamily family() const { return family_; }

  // 32-bit views (meaningful for IPv4 wildcards; the low 32 bits otherwise).
  constexpr Ipv4Address address() const {
    return Ipv4Address(static_cast<std::uint32_t>(addr_.lo()));
  }
  constexpr std::uint32_t wildcard_bits() const {
    return static_cast<std::uint32_t>(wildcard_.lo());
  }

  // Full-width views, right-aligned in AddressWidth(family()) bits.
  constexpr U128 address_wide() const { return addr_; }
  constexpr U128 wildcard_wide() const { return wildcard_; }

  constexpr bool Matches(Ipv4Address a) const {
    return family_ == AddressFamily::kIpv4 &&
           (U128(a.bits()) | wildcard_) == (addr_ | wildcard_);
  }
  constexpr bool Matches(Ipv6Address a) const {
    return family_ == AddressFamily::kIpv6 &&
           (a.bits() | wildcard_) == (addr_ | wildcard_);
  }
  constexpr bool Matches(const IpAddress& a) const {
    return family_ == a.family() &&
           (a.bits() | wildcard_) == (addr_ | wildcard_);
  }
  constexpr bool IsAny() const {
    return wildcard_ == U128::Ones(AddressWidth(family_));
  }

  // If the wildcard is a contiguous suffix of don't-care bits, the
  // equivalent prefix. The 32-bit form is nullopt for IPv6 wildcards.
  std::optional<Prefix> AsPrefix() const;
  std::optional<IpPrefix> AsIpPrefix() const;

  std::string ToString() const;

  friend constexpr auto operator<=>(const IpWildcard&,
                                    const IpWildcard&) = default;

 private:
  U128 addr_;
  U128 wildcard_;
  AddressFamily family_ = AddressFamily::kIpv4;
};

}  // namespace campion::util
