#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace campion::util {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (value == static_cast<double>(static_cast<long long>(value))) {
    return std::to_string(static_cast<long long>(value));
  }
  std::ostringstream out;
  out << value;
  return out.str();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->IsNumber() ? value->number : fallback;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue& out) {
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const char* what) {
    if (error_ != nullptr) {
      *error_ = std::string(what) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue& out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return ParseString(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.type = JsonValue::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!Consume('{')) return Fail("expected '{'");
    if (Consume('}')) return true;
    do {
      SkipSpace();
      std::string key;
      if (!ParseString(key)) return Fail("expected object key");
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
    } while (Consume(','));
    if (!Consume('}')) return Fail("expected '}'");
    return true;
  }

  bool ParseArray(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!Consume('[')) return Fail("expected '['");
    if (Consume(']')) return true;
    do {
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.array.push_back(std::move(value));
    } while (Consume(','));
    if (!Consume(']')) return Fail("expected ']'");
    return true;
  }

  bool ParseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u':
          // Our emitters only \u-escape control characters; decode to '?'.
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          pos_ += 4;
          out += '?';
          break;
        default: return Fail("unknown escape");
      }
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // Closing quote.
    return true;
  }

  bool ParseNumber(JsonValue& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double value = std::strtod(start, &end);
    if (end == start) return Fail("expected value");
    pos_ += static_cast<std::size_t>(end - start);
    out.type = JsonValue::Type::kNumber;
    out.number = value;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue& out, std::string* error) {
  return Parser(text, error).Parse(out);
}

}  // namespace campion::util
