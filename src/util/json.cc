#include "util/json.h"

#include <cstdio>
#include <sstream>

namespace campion::util {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (value == static_cast<double>(static_cast<long long>(value))) {
    return std::to_string(static_cast<long long>(value));
  }
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace campion::util
