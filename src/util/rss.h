#pragma once

// Process-memory sampling for the observability layer. On Linux the
// numbers come from /proc/self/status (VmRSS = current resident set,
// VmHWM = peak resident set); on platforms without that file both fields
// read as zero, so callers can record the sample unconditionally and
// consumers treat zero as "not available". Sampling is a handful of
// syscalls — cheap enough for once-per-phase use, too slow for hot loops.

#include <cstdint>

namespace campion::util {

struct MemorySample {
  std::uint64_t rss_bytes = 0;       // Current resident set size.
  std::uint64_t peak_rss_bytes = 0;  // High-water resident set (VmHWM).

  bool Available() const { return peak_rss_bytes != 0; }
};

// Samples the calling process's resident-set sizes. Never throws; returns
// zeros when the platform offers no /proc/self/status.
MemorySample SampleProcessMemory();

}  // namespace campion::util
