#pragma once

// BGP standard communities ("10:10"), used by community lists and route-map
// community matches/sets.

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace campion::util {

class Community {
 public:
  constexpr Community() = default;
  constexpr Community(std::uint16_t high, std::uint16_t low)
      : value_((std::uint32_t{high} << 16) | low) {}
  constexpr explicit Community(std::uint32_t value) : value_(value) {}

  // Parses "H:L" (both decimal) or a bare 32-bit decimal value.
  static std::optional<Community> Parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  constexpr std::uint16_t high() const {
    return static_cast<std::uint16_t>(value_ >> 16);
  }
  constexpr std::uint16_t low() const {
    return static_cast<std::uint16_t>(value_ & 0xffff);
  }

  std::string ToString() const;

  friend constexpr auto operator<=>(Community, Community) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace campion::util
