#pragma once

// A small fixed-size worker pool for fanning independent tasks out across
// threads. Campion's differencing pipeline uses it to run per-pair policy
// comparisons concurrently: each task owns all of its mutable state (its
// own BddManager and encoding layout), so the pool needs no shared-state
// machinery beyond the queue itself.

#include <cstddef>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <queue>
#include <thread>
#include <vector>

namespace campion::util {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();  // Waits for all queued tasks, then joins.

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues a task. Tasks must not throw; wrap fallible work and capture
  // errors by side channel (see RunParallel).
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;  // Queued + currently executing tasks.
  bool stop_ = false;
};

// Resolves a thread-count knob: 0 means "use the hardware concurrency"
// (never less than 1), any other value is taken as-is.
unsigned ResolveThreadCount(unsigned requested);

// Runs fn(0) .. fn(n-1), fanning out across `num_threads` workers when
// num_threads > 1, or inline on the calling thread otherwise. Blocks until
// all invocations complete. If any invocation throws, the first exception
// (by task index) is rethrown after all tasks have finished.
void RunParallel(unsigned num_threads, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace campion::util
