#pragma once

// A 128-bit unsigned integer built from two 64-bit limbs.
//
// The encoder's value plumbing (SymbolicField, prefix matching, interval
// extraction) is width-parametric up to 128 bits so that IPv6 addresses ride
// the same code paths as IPv4. U128 is deliberately minimal: the shifts,
// bitwise operations, comparisons, and increments the bit-field walks need,
// all constexpr, nothing else. Narrow unsigned values convert implicitly
// (so existing 32-bit call sites compile unchanged); narrowing back out is
// explicit via lo().

#include <compare>
#include <cstdint>
#include <string>

namespace campion::util {

class U128 {
 public:
  constexpr U128() = default;
  // Implicit: a narrow unsigned value is the same number in 128 bits.
  constexpr U128(std::uint64_t lo) : lo_(lo) {}  // NOLINT(runtime/explicit)
  constexpr U128(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  constexpr std::uint64_t hi() const { return hi_; }
  constexpr std::uint64_t lo() const { return lo_; }

  // The value with the low `n` bits set (n in [0, 128]). n == 64 must take
  // the second branch: the first would shift a uint64_t by 64, which is
  // undefined and on x86 silently yields ~0ull (so Ones(64) == Max()) at
  // runtime while constant folding gives the correct value — an
  // inconsistency that made exactly the 64-bit-wide blocks vanish from
  // SymbolicField::Intervals on 128-bit fields.
  static constexpr U128 Ones(int n) {
    if (n <= 0) return U128();
    if (n >= 128) return U128(~0ull, ~0ull);
    if (n > 64) return U128(~0ull >> (128 - n), ~0ull);
    return U128(0, ~0ull >> (64 - n));
  }
  static constexpr U128 Max() { return U128(~0ull, ~0ull); }

  // The i-th bit counting from bit 0 = least significant.
  constexpr bool Bit(int i) const {
    return i < 64 ? (lo_ >> i) & 1u : (hi_ >> (i - 64)) & 1u;
  }

  friend constexpr U128 operator&(U128 a, U128 b) {
    return U128(a.hi_ & b.hi_, a.lo_ & b.lo_);
  }
  friend constexpr U128 operator|(U128 a, U128 b) {
    return U128(a.hi_ | b.hi_, a.lo_ | b.lo_);
  }
  friend constexpr U128 operator^(U128 a, U128 b) {
    return U128(a.hi_ ^ b.hi_, a.lo_ ^ b.lo_);
  }
  friend constexpr U128 operator~(U128 a) { return U128(~a.hi_, ~a.lo_); }

  friend constexpr U128 operator<<(U128 a, int n) {
    if (n <= 0) return a;
    if (n >= 128) return U128();
    if (n >= 64) return U128(a.lo_ << (n - 64), 0);
    return U128((a.hi_ << n) | (a.lo_ >> (64 - n)), a.lo_ << n);
  }
  friend constexpr U128 operator>>(U128 a, int n) {
    if (n <= 0) return a;
    if (n >= 128) return U128();
    if (n >= 64) return U128(0, a.hi_ >> (n - 64));
    return U128(a.hi_ >> n, (a.lo_ >> n) | (a.hi_ << (64 - n)));
  }

  friend constexpr U128 operator+(U128 a, U128 b) {
    std::uint64_t lo = a.lo_ + b.lo_;
    std::uint64_t carry = lo < a.lo_ ? 1 : 0;
    return U128(a.hi_ + b.hi_ + carry, lo);
  }
  friend constexpr U128 operator-(U128 a, U128 b) {
    std::uint64_t lo = a.lo_ - b.lo_;
    std::uint64_t borrow = a.lo_ < b.lo_ ? 1 : 0;
    return U128(a.hi_ - b.hi_ - borrow, lo);
  }

  friend constexpr bool operator==(U128, U128) = default;
  friend constexpr std::strong_ordering operator<=>(U128 a, U128 b) {
    if (auto c = a.hi_ <=> b.hi_; c != 0) return c;
    return a.lo_ <=> b.lo_;
  }

  // Decimal rendering (division-free repeated halving is overkill; schoolbook
  // divide-by-10 over the limbs is plenty for diagnostics and tests).
  std::string ToString() const {
    if (hi_ == 0) return std::to_string(lo_);
    std::string digits;
    std::uint64_t hi = hi_, lo = lo_;
    while (hi != 0 || lo != 0) {
      // Divide (hi:lo) by 10, tracking the remainder.
      std::uint64_t rem = hi % 10;
      std::uint64_t new_hi = hi / 10;
      // (rem:lo) / 10 via 64-bit halves to avoid __int128.
      std::uint64_t part1 = (rem << 32) | (lo >> 32);
      std::uint64_t q1 = part1 / 10;
      std::uint64_t part2 = ((part1 % 10) << 32) | (lo & 0xffffffffull);
      std::uint64_t q2 = part2 / 10;
      digits.push_back(static_cast<char>('0' + part2 % 10));
      hi = new_hi;
      lo = (q1 << 32) | q2;
    }
    return std::string(digits.rbegin(), digits.rend());
  }

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

}  // namespace campion::util
