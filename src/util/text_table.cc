#include "util/text_table.h"

#include <algorithm>

namespace campion::util {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find('\n', start);
    if (pos == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, pos - start));
    start = pos + 1;
    if (start == text.size()) break;  // Trailing newline: no empty tail.
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines,
                      const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out += sep;
    out += lines[i];
  }
  return out;
}

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  const std::size_t ncols = columns_.size();
  std::vector<std::size_t> widths(ncols);
  for (std::size_t c = 0; c < ncols; ++c) widths[c] = columns_[c].size();

  std::vector<std::vector<std::vector<std::string>>> cell_lines;
  cell_lines.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::vector<std::string>> split;
    split.reserve(ncols);
    for (std::size_t c = 0; c < ncols; ++c) {
      split.push_back(SplitLines(row[c]));
      for (const auto& line : split.back()) {
        widths[c] = std::max(widths[c], line.size());
      }
    }
    cell_lines.push_back(std::move(split));
  }

  auto separator = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < ncols; ++c) {
      s += std::string(widths[c] + 2, '-');
      s += "+";
    }
    s += "\n";
    return s;
  }();

  auto emit_line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      s += " " + text + std::string(widths[c] - text.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out = separator;
  out += emit_line(columns_);
  out += separator;
  for (const auto& row : cell_lines) {
    std::size_t height = 0;
    for (const auto& cell : row) height = std::max(height, cell.size());
    for (std::size_t i = 0; i < height; ++i) {
      std::vector<std::string> line(ncols);
      for (std::size_t c = 0; c < ncols; ++c) {
        if (i < row[c].size()) line[c] = row[c][i];
      }
      out += emit_line(line);
    }
    out += separator;
  }
  return out;
}

}  // namespace campion::util
