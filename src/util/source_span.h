#pragma once

// Source-text provenance for text localization.
//
// Every IR node that can appear in a Campion difference carries a SourceSpan
// recording where in the original configuration it came from and the raw
// text. The paper obtains this by unparsing Batfish's representation; we
// track it during parsing, and fall back to unparsed canonical text for IR
// built programmatically (e.g. by the workload generator).

#include <string>

namespace campion::util {

struct SourceSpan {
  std::string file;
  int first_line = 0;  // 1-based; 0 means "no source location".
  int last_line = 0;
  std::string text;  // The raw configuration text of this span.

  bool HasLocation() const { return first_line > 0; }

  // "router.cfg:7-8" or "<generated>" when there is no location.
  std::string LocationString() const;

  friend bool operator==(const SourceSpan&, const SourceSpan&) = default;
};

}  // namespace campion::util
