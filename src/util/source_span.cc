#include "util/source_span.h"

namespace campion::util {

std::string SourceSpan::LocationString() const {
  if (!HasLocation()) return "<generated>";
  std::string out = file.empty() ? "<input>" : file;
  out += ":" + std::to_string(first_line);
  if (last_line > first_line) out += "-" + std::to_string(last_line);
  return out;
}

}  // namespace campion::util
