#include "util/prefix_range.h"

namespace campion::util {

bool PrefixRange::ContainsRange(const PrefixRange& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  if (other.EffectiveLow() < EffectiveLow() ||
      other.EffectiveHigh() > EffectiveHigh()) {
    return false;
  }
  // Members of `other` fix the first other.prefix.length address bits and
  // leave the rest free, so containment additionally requires our base to
  // be a (non-strict) supernet of other's base. A strictly longer base on
  // our side always loses: some member of `other` can flip a bit inside it.
  return prefix_.length() <= other.prefix_.length() &&
         prefix_.Contains(other.prefix_);
}

std::optional<PrefixRange> PrefixRange::Intersect(
    const PrefixRange& other) const {
  if (family() != other.family()) return std::nullopt;
  // Base prefixes are tree-ordered: they are disjoint, or one contains the
  // other. Disjoint bases mean an empty intersection.
  const IpPrefix* longer = &prefix_;
  if (other.prefix_.length() > prefix_.length()) longer = &other.prefix_;
  if (!prefix_.Contains(*longer) || !other.prefix_.Contains(*longer)) {
    return std::nullopt;
  }
  int low = low_ > other.low_ ? low_ : other.low_;
  int high = high_ < other.high_ ? high_ : other.high_;
  PrefixRange result(*longer, low, high);
  if (result.IsEmpty()) return std::nullopt;
  return result;
}

std::string PrefixRange::ToString() const {
  return prefix_.ToString() + " : " + std::to_string(low_) + "-" +
         std::to_string(high_);
}

std::string PrefixRangeTerm::ToString() const {
  std::string out = include.ToString();
  for (const auto& x : exclude) {
    out += "  minus  " + x.ToString();
  }
  return out;
}

}  // namespace campion::util
