#include "util/community.h"

#include <charconv>

namespace campion::util {
namespace {

std::optional<std::uint32_t> ParseNumber(std::string_view text,
                                         std::uint32_t max) {
  std::uint32_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value > max) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<Community> Community::Parse(std::string_view text) {
  auto colon = text.find(':');
  if (colon == std::string_view::npos) {
    auto value = ParseNumber(text, ~0u);
    if (!value) return std::nullopt;
    return Community(*value);
  }
  auto high = ParseNumber(text.substr(0, colon), 0xffff);
  auto low = ParseNumber(text.substr(colon + 1), 0xffff);
  if (!high || !low) return std::nullopt;
  return Community(static_cast<std::uint16_t>(*high),
                   static_cast<std::uint16_t>(*low));
}

std::string Community::ToString() const {
  return std::to_string(high()) + ":" + std::to_string(low());
}

}  // namespace campion::util
