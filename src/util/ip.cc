#include "util/ip.h"

#include <charconv>
#include <vector>

namespace campion::util {
namespace {

// Parses a decimal integer in [0, max] from the front of `text`, advancing
// it past the digits. Returns nullopt if there are no digits, the value
// overflows, or the number has a leading zero ("010" — inet_pton rejects
// these because historic tools read them as octal).
std::optional<std::uint32_t> ParseDecimal(std::string_view& text,
                                          std::uint32_t max) {
  if (text.size() >= 2 && text[0] == '0' && text[1] >= '0' && text[1] <= '9') {
    return std::nullopt;
  }
  std::uint32_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr == begin || value > max) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return value;
}

bool Consume(std::string_view& text, char c) {
  if (text.empty() || text.front() != c) return false;
  text.remove_prefix(1);
  return true;
}

std::optional<int> HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return std::nullopt;
}

// Parses one v6 group token: 1-4 hex digits (leading zeros allowed per
// RFC 4291, unlike dotted-quad octets).
std::optional<std::uint32_t> ParseHexGroup(std::string_view token) {
  if (token.empty() || token.size() > 4) return std::nullopt;
  std::uint32_t value = 0;
  for (char c : token) {
    auto digit = HexDigit(c);
    if (!digit) return std::nullopt;
    value = (value << 4) | static_cast<std::uint32_t>(*digit);
  }
  return value;
}

// Splits a (non-empty) "::"-free group run on ':'. Empty tokens (leading,
// trailing, or doubled colons) are malformed here. The final token may be an
// embedded dotted-quad, which expands to two groups.
std::optional<std::vector<std::uint32_t>> ParseGroupRun(std::string_view text) {
  std::vector<std::uint32_t> groups;
  while (!text.empty()) {
    auto colon = text.find(':');
    std::string_view token =
        colon == std::string_view::npos ? text : text.substr(0, colon);
    if (token.empty()) return std::nullopt;
    bool last = colon == std::string_view::npos;
    if (last && token.find('.') != std::string_view::npos) {
      auto v4 = Ipv4Address::Parse(token);
      if (!v4) return std::nullopt;
      groups.push_back(v4->bits() >> 16);
      groups.push_back(v4->bits() & 0xffff);
    } else {
      auto group = ParseHexGroup(token);
      if (!group) return std::nullopt;
      groups.push_back(*group);
    }
    if (last) break;
    text.remove_prefix(colon + 1);
    if (text.empty()) return std::nullopt;  // Trailing single colon.
  }
  return groups;
}

U128 GroupsToBits(const std::vector<std::uint32_t>& head,
                  const std::vector<std::uint32_t>& tail) {
  U128 bits;
  for (std::size_t i = 0; i < head.size(); ++i) {
    bits = bits | (U128(head[i]) << (112 - 16 * static_cast<int>(i)));
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    int slot = 8 - static_cast<int>(tail.size()) + static_cast<int>(i);
    bits = bits | (U128(tail[i]) << (112 - 16 * slot));
  }
  return bits;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  std::uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0 && !Consume(text, '.')) return std::nullopt;
    auto octet = ParseDecimal(text, 255);
    if (!octet) return std::nullopt;
    bits = (bits << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Address(bits);
}

std::string Ipv4Address::ToString() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((bits_ >> shift) & 0xff);
  }
  return out;
}

std::optional<Ipv6Address> Ipv6Address::Parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  auto gap = text.find("::");
  if (gap == std::string_view::npos) {
    auto groups = ParseGroupRun(text);
    if (!groups || groups->size() != 8) return std::nullopt;
    return Ipv6Address(GroupsToBits(*groups, {}));
  }
  if (text.find("::", gap + 1) != std::string_view::npos) return std::nullopt;
  std::string_view head_text = text.substr(0, gap);
  std::string_view tail_text = text.substr(gap + 2);
  std::vector<std::uint32_t> head, tail;
  if (!head_text.empty()) {
    auto groups = ParseGroupRun(head_text);
    if (!groups) return std::nullopt;
    head = std::move(*groups);
  }
  if (!tail_text.empty()) {
    auto groups = ParseGroupRun(tail_text);
    if (!groups) return std::nullopt;
    tail = std::move(*groups);
  }
  // "::" must stand for at least one zero group.
  if (head.size() + tail.size() >= 8) return std::nullopt;
  return Ipv6Address(GroupsToBits(head, tail));
}

std::string Ipv6Address::ToString() const {
  std::uint32_t groups[8];
  for (int i = 0; i < 8; ++i) {
    groups[i] =
        static_cast<std::uint32_t>((bits_ >> (112 - 16 * i)).lo()) & 0xffff;
  }
  // RFC 5952: compress the longest run of two or more zero groups,
  // leftmost on ties.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(39);
  auto append_group = [&](std::uint32_t g) {
    bool started = false;
    for (int shift = 12; shift >= 0; shift -= 4) {
      std::uint32_t digit = (g >> shift) & 0xf;
      if (digit != 0 || started || shift == 0) {
        out.push_back(kHex[digit]);
        started = true;
      }
    }
  };
  for (int i = 0; i < 8; ++i) {
    if (i == best_start) {
      out += "::";
      i += best_len - 1;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    append_group(groups[i]);
  }
  if (out.empty()) return "::";
  return out;
}

std::optional<int> MaskToLength(std::uint32_t mask) {
  for (int len = 0; len <= 32; ++len) {
    if (mask == MaskBits(len)) return len;
  }
  return std::nullopt;
}

std::optional<int> MaskToLengthWide(U128 mask, int width) {
  for (int len = 0; len <= width; ++len) {
    if (mask == MaskBitsWide(len, width)) return len;
  }
  return std::nullopt;
}

std::optional<Prefix> Prefix::Parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Address::Parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  auto len = ParseDecimal(len_text, 32);
  if (!len || !len_text.empty()) return std::nullopt;
  return Prefix(*addr, static_cast<int>(*len));
}

std::string Prefix::ToString() const {
  return addr_.ToString() + "/" + std::to_string(length_);
}

std::optional<Prefix6> Prefix6::Parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv6Address::Parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  auto len = ParseDecimal(len_text, 128);
  if (!len || !len_text.empty()) return std::nullopt;
  return Prefix6(*addr, static_cast<int>(*len));
}

std::string Prefix6::ToString() const {
  return addr_.ToString() + "/" + std::to_string(length_);
}

std::string IpAddress::ToString() const {
  return family_ == AddressFamily::kIpv4 ? V4().ToString() : V6().ToString();
}

std::optional<IpPrefix> IpPrefix::Parse(std::string_view text) {
  if (auto v4 = Prefix::Parse(text)) return IpPrefix(*v4);
  if (auto v6 = Prefix6::Parse(text)) return IpPrefix(*v6);
  return std::nullopt;
}

std::string IpPrefix::ToString() const {
  return family_ == AddressFamily::kIpv4 ? V4().ToString() : V6().ToString();
}

std::optional<Prefix> IpWildcard::AsPrefix() const {
  if (family_ != AddressFamily::kIpv4) return std::nullopt;
  auto len = MaskToLength(~wildcard_bits());
  if (!len) return std::nullopt;
  return Prefix(address(), *len);
}

std::optional<IpPrefix> IpWildcard::AsIpPrefix() const {
  int width = AddressWidth(family_);
  auto len = MaskToLengthWide(U128::Ones(width) ^ wildcard_, width);
  if (!len) return std::nullopt;
  return IpPrefix(family_, addr_, *len);
}

std::string IpWildcard::ToString() const {
  if (family_ == AddressFamily::kIpv4) {
    return address().ToString() + " " + Ipv4Address(wildcard_bits()).ToString();
  }
  // IPv6 ACL matches are prefix-shaped in both vendors' syntax; render the
  // prefix when the wildcard is contiguous, address + mask otherwise.
  if (auto prefix = AsIpPrefix()) return prefix->ToString();
  return Ipv6Address(addr_).ToString() + " " +
         Ipv6Address(wildcard_).ToString();
}

}  // namespace campion::util
