#include "util/ip.h"

#include <charconv>

namespace campion::util {
namespace {

// Parses a decimal integer in [0, max] from the front of `text`, advancing
// it past the digits. Returns nullopt if there are no digits or the value
// overflows.
std::optional<std::uint32_t> ParseDecimal(std::string_view& text,
                                          std::uint32_t max) {
  std::uint32_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr == begin || value > max) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return value;
}

bool Consume(std::string_view& text, char c) {
  if (text.empty() || text.front() != c) return false;
  text.remove_prefix(1);
  return true;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  std::uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0 && !Consume(text, '.')) return std::nullopt;
    auto octet = ParseDecimal(text, 255);
    if (!octet) return std::nullopt;
    bits = (bits << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Address(bits);
}

std::string Ipv4Address::ToString() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((bits_ >> shift) & 0xff);
  }
  return out;
}

std::optional<int> MaskToLength(std::uint32_t mask) {
  for (int len = 0; len <= 32; ++len) {
    if (mask == MaskBits(len)) return len;
  }
  return std::nullopt;
}

std::optional<Prefix> Prefix::Parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Address::Parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  auto len = ParseDecimal(len_text, 32);
  if (!len || !len_text.empty()) return std::nullopt;
  return Prefix(*addr, static_cast<int>(*len));
}

std::string Prefix::ToString() const {
  return addr_.ToString() + "/" + std::to_string(length_);
}

std::optional<Prefix> IpWildcard::AsPrefix() const {
  auto len = MaskToLength(~wildcard_);
  if (!len) return std::nullopt;
  return Prefix(addr_, *len);
}

std::string IpWildcard::ToString() const {
  return addr_.ToString() + " " + Ipv4Address(wildcard_).ToString();
}

}  // namespace campion::util
