#include "util/rss.h"

#ifdef __linux__
#include <cstdio>
#include <cstring>
#endif

namespace campion::util {

#ifdef __linux__

MemorySample SampleProcessMemory() {
  MemorySample sample;
  FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return sample;
  char line[256];
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    // Lines look like "VmRSS:      123456 kB".
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu", &kb) == 1) {
      sample.rss_bytes = static_cast<std::uint64_t>(kb) * 1024;
    } else if (std::sscanf(line, "VmHWM: %llu", &kb) == 1) {
      sample.peak_rss_bytes = static_cast<std::uint64_t>(kb) * 1024;
    }
    if (sample.rss_bytes != 0 && sample.peak_rss_bytes != 0) break;
  }
  std::fclose(status);
  return sample;
}

#else

MemorySample SampleProcessMemory() { return MemorySample{}; }

#endif

}  // namespace campion::util
