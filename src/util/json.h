#pragma once

// Minimal JSON helpers shared by the report writers (core's diff reports,
// obs's trace files, bench's metric dumps) and the trace-consuming tools.
//
// Emission: JsonEscape / JsonNumber keep the writers dependency-free.
//
// Reading: JsonValue + ParseJson are a small recursive-descent reader, just
// enough to load the documents this repo itself emits (campion traces,
// BENCH metric dumps). Objects preserve key order so consumers can check
// emission-order guarantees. It is not a general validating parser —
// numbers lean on strtod and \u escapes outside the control range decode
// to '?' — which matches what the emitters above can produce.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace campion::util {

// Escapes a string for embedding in a JSON string literal (quotes,
// backslashes, control characters).
std::string JsonEscape(const std::string& text);

// Formats a double the way our JSON files spell numbers: integral values
// without a decimal point (counters stay grep-friendly), everything else
// via the default ostream formatting.
std::string JsonNumber(double value);

// One parsed JSON value. Arrays/objects own their elements; objects keep
// key order as written.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }

  // First value under `key`, or nullptr (also when not an object).
  const JsonValue* Find(const std::string& key) const;
  // Find + number access with a default; sugar for metric lookups.
  double NumberOr(const std::string& key, double fallback) const;
};

// Parses `text` into `out`. Returns false on malformed input or trailing
// garbage; `error`, when non-null, receives a one-line description with a
// byte offset.
bool ParseJson(const std::string& text, JsonValue& out,
               std::string* error = nullptr);

}  // namespace campion::util
