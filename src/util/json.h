#pragma once

// Minimal JSON emission helpers shared by the report writers (core's diff
// reports, obs's trace files, bench's metric dumps). Emission only — the
// repo deliberately has no general JSON parser; tests that need to read
// JSON back carry their own small reader.

#include <string>

namespace campion::util {

// Escapes a string for embedding in a JSON string literal (quotes,
// backslashes, control characters).
std::string JsonEscape(const std::string& text);

// Formats a double the way our JSON files spell numbers: integral values
// without a decimal point (counters stay grep-friendly), everything else
// via the default ostream formatting.
std::string JsonNumber(double value);

}  // namespace campion::util
