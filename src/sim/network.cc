#include "sim/network.h"

namespace campion::sim {

void Network::AddRouter(ir::RouterConfig config) {
  std::string name = config.hostname;
  routers_[name] = std::move(config);
}

void Network::AddAdjacency(const std::string& router1,
                           const std::string& iface1,
                           const std::string& router2,
                           const std::string& iface2) {
  adjacencies_.push_back({router1, iface1, router2, iface2});
}

void Network::AddBgpSession(const std::string& router1,
                            util::Ipv4Address addr1,
                            const std::string& router2,
                            util::Ipv4Address addr2) {
  sessions_.push_back({router1, addr1, router2, addr2});
}

void Network::ReplaceRouter(const std::string& name,
                            ir::RouterConfig config) {
  config.hostname = name;
  routers_[name] = std::move(config);
}

const ir::RouterConfig* Network::FindRouter(const std::string& name) const {
  auto it = routers_.find(name);
  return it == routers_.end() ? nullptr : &it->second;
}

namespace {

using Rib = std::map<util::Prefix, Route>;

void Install(Rib& rib, const Route& route) {
  auto [it, inserted] = rib.try_emplace(route.prefix, route);
  if (!inserted && Preferred(route, it->second)) it->second = route;
}

// Locally originated routes: connected subnets and static routes.
Rib LocalRoutes(const ir::RouterConfig& config) {
  Rib rib;
  for (const auto& iface : config.interfaces) {
    if (iface.shutdown) continue;
    auto subnet = iface.ConnectedSubnet();
    if (!subnet) continue;
    Route route;
    route.prefix = *subnet;
    route.protocol = ir::Protocol::kConnected;
    route.admin_distance = config.admin_distances.connected;
    Install(rib, route);
  }
  for (const auto& s : config.static_routes) {
    Route route;
    route.prefix = s.prefix;
    route.protocol = ir::Protocol::kStatic;
    route.admin_distance = s.admin_distance;
    if (s.next_hop) route.next_hop = *s.next_hop;
    if (s.tag) route.tag = *s.tag;
    Install(rib, route);
  }
  return rib;
}

// What `sender` offers into BGP toward one neighbor, before export policy.
std::vector<Route> BgpOfferings(const ir::RouterConfig& sender,
                                const Rib& rib) {
  std::vector<Route> offered;
  if (!sender.bgp) return offered;
  // (a) BGP-learned routes already in the RIB.
  for (const auto& [prefix, route] : rib) {
    if (route.protocol == ir::Protocol::kBgp) offered.push_back(route);
  }
  // (b) Network statements originate with default attributes.
  for (const auto& network : sender.bgp->networks) {
    Route route;
    route.prefix = network;
    route.protocol = ir::Protocol::kBgp;
    route.admin_distance = sender.admin_distances.ebgp;
    offered.push_back(route);
  }
  // (c) Redistribution of other protocols into BGP.
  for (const auto& redist : sender.bgp->redistributions) {
    for (const auto& [prefix, route] : rib) {
      if (route.protocol != redist.from) continue;
      std::optional<Route> exported =
          EvalPolicy(sender, redist.route_map, route);
      if (!exported) continue;
      exported->protocol = ir::Protocol::kBgp;
      offered.push_back(*exported);
    }
  }
  return offered;
}

// One directed BGP advertisement step: sender -> receiver over a session.
void PropagateBgp(const ir::RouterConfig& sender,
                  util::Ipv4Address sender_addr, const Rib& sender_rib,
                  const ir::RouterConfig& receiver,
                  util::Ipv4Address receiver_addr, Rib& receiver_next) {
  if (!sender.bgp || !receiver.bgp) return;
  const ir::BgpNeighbor* out_stanza = sender.FindBgpNeighbor(receiver_addr);
  const ir::BgpNeighbor* in_stanza = receiver.FindBgpNeighbor(sender_addr);
  if (out_stanza == nullptr || in_stanza == nullptr) return;
  bool ebgp = sender.bgp->asn != receiver.bgp->asn;

  for (Route route : BgpOfferings(sender, sender_rib)) {
    // iBGP loop prevention: an iBGP-learned route is re-advertised over
    // iBGP only by a route reflector — to clients always, to non-clients
    // only when the route was learned from a client.
    if (!ebgp && route.ibgp && !out_stanza->route_reflector_client &&
        !route.learned_from_client) {
      continue;
    }
    std::optional<Route> exported =
        EvalPolicy(sender, out_stanza->export_policy, route);
    if (!exported) continue;
    Route advert = *exported;
    if (!out_stanza->send_community) advert.communities.clear();
    if (ebgp) {
      advert.as_path_length += 1;
      advert.local_pref = 100;  // Local pref does not cross AS boundaries.
      advert.next_hop = sender_addr;
    } else if (out_stanza->next_hop_self ||
               advert.next_hop == util::Ipv4Address(0)) {
      advert.next_hop = sender_addr;
    }
    std::optional<Route> imported =
        EvalPolicy(receiver, in_stanza->import_policy, advert);
    if (!imported) continue;
    Route installed = *imported;
    installed.protocol = ir::Protocol::kBgp;
    installed.ibgp = !ebgp;
    installed.learned_from = sender.hostname;
    installed.learned_from_client = in_stanza->route_reflector_client;
    installed.admin_distance = ebgp ? receiver.admin_distances.ebgp
                                    : receiver.admin_distances.ibgp;
    Install(receiver_next, installed);
  }
}

// One directed OSPF flooding step over an adjacency.
void PropagateOspf(const ir::RouterConfig& sender,
                   const ir::Interface& sender_iface, const Rib& sender_rib,
                   const ir::RouterConfig& receiver,
                   const ir::Interface& receiver_iface, Rib& receiver_next) {
  if (!sender_iface.ospf_enabled || !receiver_iface.ospf_enabled) return;
  if (sender_iface.ospf_passive || receiver_iface.ospf_passive) return;
  if (sender_iface.ospf_area != receiver_iface.ospf_area) return;
  std::uint32_t link_cost = receiver_iface.ospf_cost.value_or(10);

  auto deliver = [&](Route route) {
    route.protocol = ir::Protocol::kOspf;
    route.metric += link_cost;
    route.admin_distance = receiver.admin_distances.ospf;
    route.learned_from = sender.hostname;
    Install(receiver_next, route);
  };

  // (a) OSPF routes already known to the sender.
  for (const auto& [prefix, route] : sender_rib) {
    if (route.protocol == ir::Protocol::kOspf) deliver(route);
  }
  // (b) The sender's own OSPF-enabled subnets (intra-area origination).
  for (const auto& iface : sender.interfaces) {
    if (!iface.ospf_enabled || iface.shutdown) continue;
    auto subnet = iface.ConnectedSubnet();
    if (!subnet) continue;
    Route route;
    route.prefix = *subnet;
    route.metric = 0;
    deliver(route);
  }
  // (c) Redistribution into OSPF (external routes).
  if (sender.ospf) {
    for (const auto& redist : sender.ospf->redistributions) {
      for (const auto& [prefix, route] : sender_rib) {
        if (route.protocol != redist.from) continue;
        std::optional<Route> exported =
            EvalPolicy(sender, redist.route_map, route);
        if (!exported) continue;
        deliver(*exported);
      }
    }
  }
}

}  // namespace

bool RoutingSolution::SameAs(const RoutingSolution& other) const {
  return ribs == other.ribs;
}

std::string RoutingSolution::ToString() const {
  std::string out;
  for (const auto& [router, rib] : ribs) {
    out += router + ":\n";
    for (const auto& [prefix, route] : rib) {
      out += "  " + route.ToString() + "\n";
    }
  }
  return out;
}

RoutingSolution Solve(const Network& network, int max_iterations) {
  RoutingSolution solution;
  for (const auto& [name, config] : network.routers()) {
    solution.ribs[name] = LocalRoutes(config);
  }

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    // Synchronous step: next state computed from the previous RIBs, so the
    // fixed point is independent of session ordering.
    std::map<std::string, Rib> next;
    for (const auto& [name, config] : network.routers()) {
      next[name] = LocalRoutes(config);
    }

    for (const auto& session : network.bgp_sessions()) {
      const ir::RouterConfig* r1 = network.FindRouter(session.router1);
      const ir::RouterConfig* r2 = network.FindRouter(session.router2);
      if (r1 == nullptr || r2 == nullptr) continue;
      PropagateBgp(*r1, session.addr1, solution.ribs[session.router1], *r2,
                   session.addr2, next[session.router2]);
      PropagateBgp(*r2, session.addr2, solution.ribs[session.router2], *r1,
                   session.addr1, next[session.router1]);
    }
    for (const auto& adjacency : network.adjacencies()) {
      const ir::RouterConfig* r1 = network.FindRouter(adjacency.router1);
      const ir::RouterConfig* r2 = network.FindRouter(adjacency.router2);
      if (r1 == nullptr || r2 == nullptr) continue;
      const ir::Interface* i1 = r1->FindInterface(adjacency.interface1);
      const ir::Interface* i2 = r2->FindInterface(adjacency.interface2);
      if (i1 == nullptr || i2 == nullptr) continue;
      PropagateOspf(*r1, *i1, solution.ribs[adjacency.router1], *r2, *i2,
                    next[adjacency.router2]);
      PropagateOspf(*r2, *i2, solution.ribs[adjacency.router2], *r1, *i1,
                    next[adjacency.router1]);
    }

    if (next == solution.ribs) break;
    solution.ribs = std::move(next);
  }
  return solution;
}

}  // namespace campion::sim
