#pragma once

// The stable-routing-problem (SRP) simulator.
//
// A Network is a set of routers (vendor-independent configurations) plus
// explicit adjacencies. Solve() iterates route exchange to a fixed point:
//   * each router originates connected routes, static routes, and its BGP
//     network statements;
//   * OSPF floods routes over OSPF-enabled adjacencies, accumulating link
//     cost, with redistribution policies applied when routes enter OSPF;
//   * BGP propagates over BGP sessions, applying the sender's export policy
//     and the receiver's import policy, bumping AS-path length across eBGP
//     hops, honoring send-community, next-hop-self and route-reflector
//     semantics;
//   * every router installs the most preferred route per prefix (admin
//     distance, then protocol attributes).
//
// This is the substrate behind the Theorem 3.3 experiments: Campion-clean
// configuration pairs are swapped into the same topology and must yield the
// same routing solution.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/config.h"
#include "sim/route.h"

namespace campion::sim {

struct Adjacency {
  std::string router1;
  std::string interface1;
  std::string router2;
  std::string interface2;
};

struct BgpSession {
  std::string router1;
  util::Ipv4Address addr1;  // router1's session address (router2's neighbor).
  std::string router2;
  util::Ipv4Address addr2;
};

class Network {
 public:
  // Adds a router; its name is config.hostname.
  void AddRouter(ir::RouterConfig config);
  // Declares a physical adjacency between two interfaces (used by OSPF).
  void AddAdjacency(const std::string& router1, const std::string& iface1,
                    const std::string& router2, const std::string& iface2);
  // Declares a BGP session. addr1/addr2 must match the routers' neighbor
  // stanzas (addr1 is router1's address, i.e. what router2 calls neighbor).
  void AddBgpSession(const std::string& router1, util::Ipv4Address addr1,
                     const std::string& router2, util::Ipv4Address addr2);

  // Replaces a router's configuration, keeping the topology: the router
  // replacement scenario. The new config's hostname is forced to `name`.
  void ReplaceRouter(const std::string& name, ir::RouterConfig config);

  const ir::RouterConfig* FindRouter(const std::string& name) const;

  const std::vector<Adjacency>& adjacencies() const { return adjacencies_; }
  const std::vector<BgpSession>& bgp_sessions() const { return sessions_; }
  const std::map<std::string, ir::RouterConfig>& routers() const {
    return routers_;
  }

 private:
  std::map<std::string, ir::RouterConfig> routers_;
  std::vector<Adjacency> adjacencies_;
  std::vector<BgpSession> sessions_;
};

// The routing solution: every router's RIB (best route per prefix).
struct RoutingSolution {
  std::map<std::string, std::map<util::Prefix, Route>> ribs;

  // Compares two solutions' forwarding-relevant content, ignoring
  // router-local identifiers. Used to validate Theorem 3.3. Attribute
  // fields that are meaningful network-wide (prefix, protocol, local-pref,
  // communities, metric) must match; `learned_from` must match by name.
  bool SameAs(const RoutingSolution& other) const;

  std::string ToString() const;
};

// Iterates to a fixed point (or `max_iterations`, far above any real
// convergence time for the topologies the tests build).
RoutingSolution Solve(const Network& network, int max_iterations = 64);

}  // namespace campion::sim
