#pragma once

// Concrete routes and concrete route-map evaluation for the stable-routing
// simulator. Campion itself never needs these (its checks are symbolic and
// protocol-free — that is the point of §3.4); the simulator exists to
// validate Theorem 3.3 empirically: two locally equivalent configurations
// must produce identical routing solutions on any topology.

#include <cstdint>
#include <optional>
#include <set>
#include <string>

#include "ir/config.h"
#include "util/community.h"
#include "util/ip.h"

namespace campion::sim {

struct Route {
  util::Prefix prefix;
  ir::Protocol protocol = ir::Protocol::kConnected;
  int admin_distance = 0;
  // BGP attributes (higher local_pref preferred, then shorter AS path,
  // then lower MED).
  std::uint32_t local_pref = 100;
  int as_path_length = 0;
  std::uint32_t metric = 0;  // MED for BGP, cost for OSPF.
  std::uint32_t tag = 0;
  std::set<util::Community> communities;
  util::Ipv4Address next_hop;
  std::string learned_from;  // Router name, empty for locally originated.
  bool ibgp = false;
  // Whether the receiving session was marked route-reflector-client on the
  // receiver (drives reflection of iBGP routes).
  bool learned_from_client = false;

  friend bool operator==(const Route&, const Route&) = default;

  std::string ToString() const;
};

// True when `a` is preferred over `b` for installation in the RIB
// (assumes equal prefixes).
bool Preferred(const Route& a, const Route& b);

// Evaluates a route map on a concrete route: returns the transformed route
// if accepted, nullopt if rejected. `config` resolves named lists. Matches
// follow the same semantics as the symbolic encoder (prefix ranges,
// AND-within-entry/OR-across-entries community lists, fall-through terms).
std::optional<Route> EvalRouteMap(const ir::RouterConfig& config,
                                  const ir::RouteMap& map, Route route);

// The same, resolving the map by name; an empty name accepts unmodified.
std::optional<Route> EvalPolicy(const ir::RouterConfig& config,
                                const std::string& map_name, Route route);

}  // namespace campion::sim
