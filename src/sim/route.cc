#include "sim/route.h"

namespace campion::sim {
namespace {

bool MatchPrefixList(const ir::RouterConfig& config, const std::string& name,
                     const Route& route) {
  const ir::PrefixList* list = config.FindPrefixList(name);
  if (list == nullptr) return false;  // Undefined list matches nothing.
  for (const auto& entry : list->entries) {
    if (entry.range.Contains(route.prefix)) {
      return entry.action == ir::LineAction::kPermit;
    }
  }
  return false;  // Implicit deny.
}

bool MatchCommunityList(const ir::RouterConfig& config,
                        const std::string& name, const Route& route) {
  const ir::CommunityList* list = config.FindCommunityList(name);
  if (list == nullptr) return false;
  for (const auto& entry : list->entries) {
    bool all = true;
    for (const auto& community : entry.all_of) {
      if (!route.communities.contains(community)) {
        all = false;
        break;
      }
    }
    if (all) return entry.action == ir::LineAction::kPermit;
  }
  return false;
}

bool MatchCondition(const ir::RouterConfig& config,
                    const ir::RouteMapMatch& match, const Route& route) {
  switch (match.kind) {
    case ir::RouteMapMatch::Kind::kPrefixList:
      for (const auto& name : match.names) {
        if (MatchPrefixList(config, name, route)) return true;
      }
      return false;
    case ir::RouteMapMatch::Kind::kCommunityList:
      for (const auto& name : match.names) {
        if (MatchCommunityList(config, name, route)) return true;
      }
      return false;
    case ir::RouteMapMatch::Kind::kAsPathList:
      // The simulator's routes carry only an AS-path length, so regex
      // matches never fire here; as-path differences are checked
      // symbolically by Campion, not exercised by the simulator.
      return false;
    case ir::RouteMapMatch::Kind::kTag:
      return route.tag == match.value;
    case ir::RouteMapMatch::Kind::kMetric:
      return route.metric == match.value;
    case ir::RouteMapMatch::Kind::kProtocol:
      return route.protocol == match.protocol;
  }
  return false;
}

void ApplySet(const ir::RouteMapSet& set, Route& route) {
  switch (set.kind) {
    case ir::RouteMapSet::Kind::kLocalPreference:
      route.local_pref = set.value;
      break;
    case ir::RouteMapSet::Kind::kMetric:
      route.metric = set.value;
      break;
    case ir::RouteMapSet::Kind::kTag:
      route.tag = set.value;
      break;
    case ir::RouteMapSet::Kind::kNextHop:
      route.next_hop = set.next_hop;
      break;
    case ir::RouteMapSet::Kind::kNextHopSelf:
      // Sentinel 0: the propagation step replaces it with the advertising
      // session address, which is what "self" resolves to.
      route.next_hop = util::Ipv4Address(0);
      break;
    case ir::RouteMapSet::Kind::kCommunitySet:
      route.communities.clear();
      route.communities.insert(set.communities.begin(),
                               set.communities.end());
      break;
    case ir::RouteMapSet::Kind::kCommunityAdd:
      route.communities.insert(set.communities.begin(),
                               set.communities.end());
      break;
    case ir::RouteMapSet::Kind::kCommunityDelete:
      for (const auto& community : set.communities) {
        route.communities.erase(community);
      }
      break;
  }
}

}  // namespace

std::string Route::ToString() const {
  std::string out = prefix.ToString() + " [" + ir::ToString(protocol) +
                    "/" + std::to_string(admin_distance) + "]";
  if (protocol == ir::Protocol::kBgp) {
    out += " lp=" + std::to_string(local_pref) +
           " aspath=" + std::to_string(as_path_length);
  }
  out += " metric=" + std::to_string(metric);
  if (!communities.empty()) {
    out += " comm={";
    bool first = true;
    for (const auto& community : communities) {
      if (!first) out += ",";
      out += community.ToString();
      first = false;
    }
    out += "}";
  }
  if (!learned_from.empty()) out += " via " + learned_from;
  return out;
}

bool Preferred(const Route& a, const Route& b) {
  if (a.admin_distance != b.admin_distance) {
    return a.admin_distance < b.admin_distance;
  }
  if (a.protocol == ir::Protocol::kBgp && b.protocol == ir::Protocol::kBgp) {
    if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
    if (a.as_path_length != b.as_path_length) {
      return a.as_path_length < b.as_path_length;
    }
  }
  if (a.metric != b.metric) return a.metric < b.metric;
  // Deterministic final tie-breaks so the fixed point is unique.
  if (a.learned_from != b.learned_from) return a.learned_from < b.learned_from;
  return false;
}

std::optional<Route> EvalRouteMap(const ir::RouterConfig& config,
                                  const ir::RouteMap& map, Route route) {
  for (const auto& clause : map.clauses) {
    bool matches = true;
    for (const auto& match : clause.matches) {
      if (!MatchCondition(config, match, route)) {
        matches = false;
        break;
      }
    }
    if (!matches) continue;
    for (const auto& set : clause.sets) ApplySet(set, route);
    switch (clause.action) {
      case ir::ClauseAction::kPermit: return route;
      case ir::ClauseAction::kDeny: return std::nullopt;
      case ir::ClauseAction::kFallThrough: break;  // Continue to next term.
    }
  }
  if (map.default_action == ir::ClauseAction::kPermit) return route;
  return std::nullopt;
}

std::optional<Route> EvalPolicy(const ir::RouterConfig& config,
                                const std::string& map_name, Route route) {
  if (map_name.empty()) return route;
  const ir::RouteMap* map = config.FindRouteMap(map_name);
  if (map == nullptr) return route;  // Dangling reference: pass through.
  return EvalRouteMap(config, *map, std::move(route));
}

}  // namespace campion::sim
