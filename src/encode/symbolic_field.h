#pragma once

// Fixed-width unsigned bit fields inside a BDD variable order, with the
// comparison and equality predicates the encoders need. Bit 0 of a field is
// its most significant bit, so integer comparisons read top-down along the
// variable order and stay small.
//
// Values are util::U128, so fields may be up to 128 bits wide (IPv6
// addresses); narrower call sites pass plain integers, which convert
// implicitly and occupy the low bits — for a 32-bit field the semantics are
// bit-for-bit the old uint32_t ones.

#include <cstdint>
#include <vector>

#include "bdd/bdd.h"
#include "util/u128.h"

namespace campion::encode {

class SymbolicField {
 public:
  SymbolicField() = default;
  SymbolicField(bdd::Var first_var, int width)
      : first_(first_var), width_(width) {}

  bdd::Var first_var() const { return first_; }
  int width() const { return width_; }
  bdd::Var VarAt(int bit) const { return first_ + static_cast<bdd::Var>(bit); }

  // field == value
  bdd::BddRef EqualsConst(bdd::BddManager& mgr, util::U128 value) const;
  // The top `nbits` bits of the field equal the top `nbits` bits of `value`
  // (value is left-aligned in the field width). Used for prefix matching.
  bdd::BddRef MatchPrefixBits(bdd::BddManager& mgr, util::U128 value,
                              int nbits) const;
  // Per-bit wildcard equality: bits where `care` has a 0 are ignored.
  // `value` and `care` are left-aligned in the field width.
  bdd::BddRef MatchMasked(bdd::BddManager& mgr, util::U128 value,
                          util::U128 care) const;
  // field <= value, field >= value, low <= field <= high.
  bdd::BddRef Leq(bdd::BddManager& mgr, util::U128 value) const;
  bdd::BddRef Geq(bdd::BddManager& mgr, util::U128 value) const;
  bdd::BddRef InRange(bdd::BddManager& mgr, util::U128 low,
                      util::U128 high) const;

  // Reads the field from a cube; don't-care bits decode as 0.
  util::U128 Decode(const bdd::Cube& cube) const;

  // The exact set of field values satisfying `set` (a predicate over this
  // field only — project other variables out first), as a sorted list of
  // maximal disjoint [low, high] intervals. Cost is O(nodes × width), not
  // O(2^width): the BDD is walked once per (node, depth) pair.
  struct Interval {
    util::U128 low;
    util::U128 high;
    friend auto operator<=>(const Interval&, const Interval&) = default;
  };
  std::vector<Interval> Intervals(bdd::BddManager& mgr,
                                  bdd::BddRef set) const;

  // Appends [low, high] to `intervals`, merging with the back interval when
  // exactly adjacent (back.high + 1 == low). Callers append in increasing
  // order. Public (and written subtraction-style) so the no-wraparound
  // guarantee is directly testable: a back interval ending at the maximum
  // field value must never merge with a later append — the old
  // `high + 1 == low` formulation wrapped to 0 there.
  static void AppendInterval(std::vector<Interval>& intervals, util::U128 low,
                             util::U128 high);

 private:
  // The walk itself; requires `mgr`'s variable order to be the declaration
  // order (Intervals routes reordered managers through their
  // declaration-order view first).
  std::vector<Interval> IntervalsInDeclarationOrder(const bdd::BddManager& mgr,
                                                    bdd::BddRef set) const;

  // The bit of `value` aligned with field bit `i` (value left-aligned).
  bool ValueBit(util::U128 value, int i) const {
    return value.Bit(width_ - 1 - i);
  }

  bdd::Var first_ = 0;
  int width_ = 0;
};

}  // namespace campion::encode
