#pragma once

// Fixed-width unsigned bit fields inside a BDD variable order, with the
// comparison and equality predicates the encoders need. Bit 0 of a field is
// its most significant bit, so integer comparisons read top-down along the
// variable order and stay small.

#include <cstdint>
#include <vector>

#include "bdd/bdd.h"

namespace campion::encode {

class SymbolicField {
 public:
  SymbolicField() = default;
  SymbolicField(bdd::Var first_var, int width)
      : first_(first_var), width_(width) {}

  bdd::Var first_var() const { return first_; }
  int width() const { return width_; }
  bdd::Var VarAt(int bit) const { return first_ + static_cast<bdd::Var>(bit); }

  // field == value
  bdd::BddRef EqualsConst(bdd::BddManager& mgr, std::uint32_t value) const;
  // The top `nbits` bits of the field equal the top `nbits` bits of `value`
  // (value is left-aligned in the field width). Used for prefix matching.
  bdd::BddRef MatchPrefixBits(bdd::BddManager& mgr, std::uint32_t value,
                              int nbits) const;
  // Per-bit wildcard equality: bits where `care` has a 0 are ignored.
  // `value` and `care` are left-aligned in the field width.
  bdd::BddRef MatchMasked(bdd::BddManager& mgr, std::uint32_t value,
                          std::uint32_t care) const;
  // field <= value, field >= value, low <= field <= high.
  bdd::BddRef Leq(bdd::BddManager& mgr, std::uint32_t value) const;
  bdd::BddRef Geq(bdd::BddManager& mgr, std::uint32_t value) const;
  bdd::BddRef InRange(bdd::BddManager& mgr, std::uint32_t low,
                      std::uint32_t high) const;

  // Reads the field from a cube; don't-care bits decode as 0.
  std::uint32_t Decode(const bdd::Cube& cube) const;

  // The exact set of field values satisfying `set` (a predicate over this
  // field only — project other variables out first), as a sorted list of
  // maximal disjoint [low, high] intervals. Cost is O(nodes × width), not
  // O(2^width): the BDD is walked once per (node, depth) pair.
  struct Interval {
    std::uint32_t low = 0;
    std::uint32_t high = 0;
    friend auto operator<=>(const Interval&, const Interval&) = default;
  };
  std::vector<Interval> Intervals(bdd::BddManager& mgr,
                                  bdd::BddRef set) const;

 private:
  // The walk itself; requires `mgr`'s variable order to be the declaration
  // order (Intervals routes reordered managers through their
  // declaration-order view first).
  std::vector<Interval> IntervalsInDeclarationOrder(const bdd::BddManager& mgr,
                                                    bdd::BddRef set) const;

  // The bit of `value` aligned with field bit `i` (value left-aligned).
  bool ValueBit(std::uint32_t value, int i) const {
    return (value >> (width_ - 1 - i)) & 1u;
  }

  bdd::Var first_ = 0;
  int width_ = 0;
};

}  // namespace campion::encode
