#pragma once

// Compiles routing-policy IR into BDD predicates over the symbolic
// route-advertisement space (our analogue of Bonsai's import/export-filter
// encoding). Works relative to one router's configuration, which supplies
// the prefix-list and community-list definitions that route-map matches
// reference by name.

#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "encode/route_adv.h"
#include "ir/config.h"
#include "ir/policy.h"

namespace campion::encode {

class EncodingTemplate;

class PolicyEncoder {
 public:
  // `tmpl`, when given, must be an encoding template whose manager seeded
  // `layout`'s manager (BddManager::SeedFrom): structurally known lists are
  // then answered by an O(key) lookup instead of being re-encoded, since
  // template refs stay valid in the seeded manager.
  PolicyEncoder(RouteAdvLayout& layout, const ir::RouterConfig& config,
                const EncodingTemplate* tmpl = nullptr)
      : layout_(layout), config_(config), template_(tmpl) {}

  // The set of advertisements a prefix list permits (first match wins;
  // implicit deny at the end).
  bdd::BddRef PrefixListPermits(const ir::PrefixList& list);
  // The set of advertisements a community list permits.
  bdd::BddRef CommunityListPermits(const ir::CommunityList& list);
  // One match condition (names are a disjunction across referenced lists).
  bdd::BddRef MatchToBdd(const ir::RouteMapMatch& match);
  // A clause guard: the conjunction of all its match conditions.
  bdd::BddRef ClauseGuard(const ir::RouteMapClause& clause);

  // References to undefined lists encountered while encoding. An undefined
  // list matches nothing (the conservative reading); each occurrence is
  // recorded here so the caller can surface it.
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  RouteAdvLayout& layout_;
  const ir::RouterConfig& config_;
  const EncodingTemplate* template_ = nullptr;
  std::vector<std::string> warnings_;
};

}  // namespace campion::encode
