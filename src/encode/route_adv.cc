#include "encode/route_adv.h"

#include <algorithm>

namespace campion::encode {

namespace {
// Per-family address and length widths: 32/6 for IPv4 (lengths 0..32),
// 128/8 for IPv6 (lengths 0..128).
constexpr int AddrWidth(util::AddressFamily family) {
  return util::AddressWidth(family);
}
constexpr int LenWidth(util::AddressFamily family) {
  return family == util::AddressFamily::kIpv4 ? 6 : 8;
}
constexpr int kProtoWidth = 2;
constexpr int kTagWidth = 16;
constexpr int kMetricWidth = 16;

std::uint32_t ProtocolCode(ir::Protocol p) {
  switch (p) {
    case ir::Protocol::kConnected: return 0;
    case ir::Protocol::kStatic: return 1;
    case ir::Protocol::kOspf: return 2;
    case ir::Protocol::kBgp: return 3;
  }
  return 3;
}

ir::Protocol ProtocolFromCode(std::uint32_t code) {
  switch (code) {
    case 0: return ir::Protocol::kConnected;
    case 1: return ir::Protocol::kStatic;
    case 2: return ir::Protocol::kOspf;
    default: return ir::Protocol::kBgp;
  }
}
}  // namespace

RouteAdvLayout::RouteAdvLayout(bdd::BddManager& mgr,
                               std::vector<util::Community> communities,
                               util::AddressFamily family)
    : mgr_(mgr), family_(family), communities_(std::move(communities)) {
  std::sort(communities_.begin(), communities_.end());
  communities_.erase(std::unique(communities_.begin(), communities_.end()),
                     communities_.end());

  const int addr_width = AddrWidth(family);
  const int len_width = LenWidth(family);
  bdd::Var first = mgr_.AddVars(addr_width + len_width + kProtoWidth +
                                kTagWidth + kMetricWidth +
                                static_cast<bdd::Var>(communities_.size()));
  addr_ = SymbolicField(first, addr_width);
  length_ = SymbolicField(first + addr_width, len_width);
  protocol_ = SymbolicField(first + addr_width + len_width, kProtoWidth);
  tag_ = SymbolicField(first + addr_width + len_width + kProtoWidth,
                       kTagWidth);
  metric_ = SymbolicField(
      first + addr_width + len_width + kProtoWidth + kTagWidth, kMetricWidth);
  bdd::Var community_first = first + addr_width + len_width + kProtoWidth +
                             kTagWidth + kMetricWidth;
  for (std::size_t i = 0; i < communities_.size(); ++i) {
    community_vars_[communities_[i]] =
        community_first + static_cast<bdd::Var>(i);
  }
  // Multi-bit fields are indivisible blocks for group sifting: reordering
  // within a field would break nothing semantically, but keeping the bits
  // contiguous and MSB-first keeps interval extraction walks cheap.
  // Community variables are independent single bits and sift alone.
  mgr_.DeclareVarBlock(first, addr_width);
  mgr_.DeclareVarBlock(first + addr_width, len_width);
  mgr_.DeclareVarBlock(first + addr_width + len_width, kProtoWidth);
  mgr_.DeclareVarBlock(first + addr_width + len_width + kProtoWidth,
                       kTagWidth);
  mgr_.DeclareVarBlock(
      first + addr_width + len_width + kProtoWidth + kTagWidth, kMetricWidth);
  valid_ = length_.Leq(mgr_, util::MaxPrefixLength(family));
}

std::vector<bdd::BddRef> RouteAdvLayout::SiftRoots() const {
  std::vector<bdd::BddRef> roots;
  roots.push_back(valid_);
  for (const auto& [label, ref] : uninterpreted_) roots.push_back(ref);
  return roots;
}

std::vector<bdd::BddRef*> RouteAdvLayout::GcRoots() {
  std::vector<bdd::BddRef*> roots;
  roots.push_back(&valid_);
  for (auto& [label, ref] : uninterpreted_) roots.push_back(&ref);
  return roots;
}

RouteAdvLayout::RouteAdvLayout(bdd::BddManager& mgr,
                               const RouteAdvLayout& proto)
    : mgr_(mgr),
      family_(proto.family_),
      addr_(proto.addr_),
      length_(proto.length_),
      protocol_(proto.protocol_),
      tag_(proto.tag_),
      metric_(proto.metric_),
      communities_(proto.communities_),
      community_vars_(proto.community_vars_),
      uninterpreted_(proto.uninterpreted_),
      valid_(proto.valid_) {}

bdd::BddRef RouteAdvLayout::MatchPrefixRange(
    const util::PrefixRange& range) const {
  if (range.family() != family_ || range.IsEmpty()) return mgr_.False();
  int base_len = range.prefix().length();
  int low = std::max(range.low(), base_len);
  int high = std::min(range.high(), util::MaxPrefixLength(family_));
  bdd::BddRef addr_ok =
      addr_.MatchPrefixBits(mgr_, range.prefix().address().bits(), base_len);
  bdd::BddRef len_ok =
      length_.InRange(mgr_, static_cast<std::uint32_t>(low),
                      static_cast<std::uint32_t>(high));
  return mgr_.And(addr_ok, len_ok);
}

bdd::BddRef RouteAdvLayout::MatchExactPrefix(const util::IpPrefix& p) const {
  return MatchPrefixRange(util::PrefixRange(p));
}

bdd::BddRef RouteAdvLayout::HasCommunity(util::Community c) const {
  auto it = community_vars_.find(c);
  // Communities outside the task universe cannot be carried by any route in
  // the encoding, so the match is false.
  if (it == community_vars_.end()) return mgr_.False();
  return mgr_.VarTrue(it->second);
}

bdd::BddRef RouteAdvLayout::NoCommunities() const {
  bdd::BddRef none = mgr_.True();
  for (const auto& [community, var] : community_vars_) {
    none = mgr_.And(none, mgr_.Not(mgr_.VarTrue(var)));
  }
  return none;
}

bdd::BddRef RouteAdvLayout::ProtocolIs(ir::Protocol p) const {
  return protocol_.EqualsConst(mgr_, ProtocolCode(p));
}

bdd::BddRef RouteAdvLayout::TagEquals(std::uint32_t tag) const {
  return tag_.EqualsConst(mgr_, tag & 0xffff);
}

bdd::BddRef RouteAdvLayout::MetricEquals(std::uint32_t metric) const {
  return metric_.EqualsConst(mgr_, metric & 0xffff);
}

bdd::BddRef RouteAdvLayout::UninterpretedPredicate(const std::string& label) {
  auto it = uninterpreted_.find(label);
  if (it != uninterpreted_.end()) return it->second;
  bdd::Var v = mgr_.AddVars(1);
  bdd::BddRef ref = mgr_.VarTrue(v);
  uninterpreted_.emplace(label, ref);
  return ref;
}

std::vector<bool> RouteAdvLayout::PrefixVarMask() const {
  std::vector<bool> mask(mgr_.num_vars(), false);
  for (int i = 0; i < addr_.width(); ++i) mask[addr_.VarAt(i)] = true;
  for (int i = 0; i < length_.width(); ++i) mask[length_.VarAt(i)] = true;
  return mask;
}

std::vector<bool> RouteAdvLayout::NonPrefixVarMask() const {
  std::vector<bool> mask = PrefixVarMask();
  mask.flip();
  return mask;
}

std::vector<bool> RouteAdvLayout::CommunityVarMask() const {
  std::vector<bool> mask(mgr_.num_vars(), false);
  for (const auto& [community, var] : community_vars_) mask[var] = true;
  return mask;
}

RouteAdvExample RouteAdvLayout::Decode(const bdd::Cube& cube) const {
  RouteAdvExample example;
  util::U128 addr = addr_.Decode(cube);
  int len = static_cast<int>(length_.Decode(cube).lo());
  if (len > util::MaxPrefixLength(family_)) {
    len = util::MaxPrefixLength(family_);
  }
  example.prefix = util::IpPrefix(family_, addr, len);
  example.protocol = ProtocolFromCode(
      static_cast<std::uint32_t>(protocol_.Decode(cube).lo()));
  example.tag = static_cast<std::uint32_t>(tag_.Decode(cube).lo());
  example.metric = static_cast<std::uint32_t>(metric_.Decode(cube).lo());
  for (const auto& [community, var] : community_vars_) {
    if (var < cube.size() && cube[var] == 1) {
      example.communities.push_back(community);
    }
  }
  return example;
}

std::string RouteAdvLayout::DescribeCommunityCube(const bdd::Cube& cube) const {
  std::string out;
  for (const auto& [community, var] : community_vars_) {
    if (var >= cube.size() || cube[var] == -1) continue;
    if (!out.empty()) out += ", ";
    if (cube[var] == 0) out += "not ";
    out += community.ToString();
  }
  return out.empty() ? "(any communities)" : out;
}

std::string RouteAdvExample::ToString() const {
  std::string out = "prefix: " + prefix.ToString();
  if (!communities.empty()) {
    out += ", communities: [";
    for (std::size_t i = 0; i < communities.size(); ++i) {
      if (i > 0) out += " ";
      out += communities[i].ToString();
    }
    out += "]";
  }
  if (protocol != ir::Protocol::kBgp) {
    out += ", protocol: " + ir::ToString(protocol);
  }
  if (tag != 0) out += ", tag: " + std::to_string(tag);
  if (metric != 0) out += ", metric: " + std::to_string(metric);
  return out;
}

}  // namespace campion::encode
