#include "encode/policy_encoder.h"

#include "encode/encoding_template.h"
#include "obs/metrics.h"

namespace campion::encode {

bdd::BddRef PolicyEncoder::PrefixListPermits(const ir::PrefixList& list) {
  bdd::BddManager& mgr = layout_.manager();
  if (template_ != nullptr) {
    if (auto ref = template_->PrefixListPermits(list)) {
      obs::Count("encode.template_hits");
      return *ref;
    }
    obs::Count("encode.template_misses");
  }
  obs::Count("encode.prefix_lists");
  obs::Count("encode.prefix_list_entries",
             static_cast<double>(list.entries.size()));
  // First match wins: walk entries in order, tracking the space not yet
  // matched by an earlier entry.
  bdd::BddRef permitted = mgr.False();
  bdd::BddRef remaining = mgr.True();
  for (const auto& entry : list.entries) {
    bdd::BddRef here = layout_.MatchPrefixRange(entry.range);
    if (entry.action == ir::LineAction::kPermit) {
      permitted = mgr.Or(permitted, mgr.And(remaining, here));
    }
    remaining = mgr.Diff(remaining, here);
  }
  return permitted;
}

bdd::BddRef PolicyEncoder::CommunityListPermits(const ir::CommunityList& list) {
  bdd::BddManager& mgr = layout_.manager();
  if (template_ != nullptr) {
    if (auto ref = template_->CommunityListPermits(list)) {
      obs::Count("encode.template_hits");
      return *ref;
    }
    obs::Count("encode.template_misses");
  }
  obs::Count("encode.community_lists");
  bdd::BddRef permitted = mgr.False();
  bdd::BddRef remaining = mgr.True();
  for (const auto& entry : list.entries) {
    // An entry matches when the route carries every community it names.
    bdd::BddRef here = mgr.True();
    for (const auto& community : entry.all_of) {
      here = mgr.And(here, layout_.HasCommunity(community));
    }
    if (entry.action == ir::LineAction::kPermit) {
      permitted = mgr.Or(permitted, mgr.And(remaining, here));
    }
    remaining = mgr.Diff(remaining, here);
  }
  return permitted;
}

bdd::BddRef PolicyEncoder::MatchToBdd(const ir::RouteMapMatch& match) {
  bdd::BddManager& mgr = layout_.manager();
  switch (match.kind) {
    case ir::RouteMapMatch::Kind::kPrefixList: {
      bdd::BddRef any = mgr.False();
      for (const auto& name : match.names) {
        const ir::PrefixList* list = config_.FindPrefixList(name);
        if (list == nullptr) {
          warnings_.push_back("undefined prefix-list: " + name);
          continue;
        }
        any = mgr.Or(any, PrefixListPermits(*list));
      }
      return any;
    }
    case ir::RouteMapMatch::Kind::kCommunityList: {
      bdd::BddRef any = mgr.False();
      for (const auto& name : match.names) {
        const ir::CommunityList* list = config_.FindCommunityList(name);
        if (list == nullptr) {
          warnings_.push_back("undefined community-list: " + name);
          continue;
        }
        any = mgr.Or(any, CommunityListPermits(*list));
      }
      return any;
    }
    case ir::RouteMapMatch::Kind::kAsPathList: {
      // AS-path regexes are compared as opaque atoms: two lists with the
      // same normalized signature get the same uninterpreted predicate, so
      // equal lists align and differing lists produce a difference with a
      // single example (the paper's treatment of non-prefix fields).
      bdd::BddRef any = mgr.False();
      for (const auto& name : match.names) {
        const ir::AsPathList* list = config_.FindAsPathList(name);
        if (list == nullptr) {
          warnings_.push_back("undefined as-path list: " + name);
          continue;
        }
        any = mgr.Or(any, layout_.UninterpretedPredicate(
                              "as-path matches: " + list->Signature()));
      }
      return any;
    }
    case ir::RouteMapMatch::Kind::kTag:
      return layout_.TagEquals(match.value);
    case ir::RouteMapMatch::Kind::kProtocol:
      return layout_.ProtocolIs(match.protocol);
    case ir::RouteMapMatch::Kind::kMetric:
      return layout_.MetricEquals(match.value);
  }
  return mgr.False();
}

bdd::BddRef PolicyEncoder::ClauseGuard(const ir::RouteMapClause& clause) {
  bdd::BddManager& mgr = layout_.manager();
  bdd::BddRef guard = mgr.True();
  for (const auto& match : clause.matches) {
    guard = mgr.And(guard, MatchToBdd(match));
  }
  return guard;
}

}  // namespace campion::encode
