#pragma once

// Cross-pair encoding memoization (ROADMAP: "cross-pair encoding
// memoization").
//
// Every differencing task owns a private BddManager, which keeps arenas
// small and tasks trivially parallel — but it also means each pair
// re-encodes the same prefix lists, community lists, and ACL match clauses
// from scratch: two routers' pairs overwhelmingly reference one shared list
// library. An EncodingTemplate hoists that common work out of the fan-out:
//
//   build   — scan both configurations for structurally distinct prefix
//             lists, community lists, and ACL line matches (canonical key,
//             so identically-shaped objects on both sides collapse), and
//             encode each one exactly once into the template's managers;
//   freeze  — after construction the template is immutable and shared
//             read-only across all pair tasks (const access only; safe to
//             read from any number of threads concurrently);
//   seed    — each pair task seeds its private manager with a snapshot of
//             the template arena (BddManager::SeedFrom), which preserves
//             arena indices, so template refs denote the same functions in
//             the seeded manager;
//   mutate  — the pair then encodes whatever the template does not cover
//             (route-map guards, class predicates, as-path predicates,
//             localization sets) privately, on top of the seeded arena.
//
// The ITE computed cache is deliberately NOT part of the snapshot: it is a
// lossy, history-dependent performance structure, and sharing it would
// either need synchronization (defeating per-pair isolation) or leak one
// pair's call history into another's hit-rate accounting. Seeded managers
// start with a fresh cache sized to the copied arena.
//
// Correctness: a reduced ordered BDD is canonical for a given function and
// variable order, and nothing downstream depends on arena indices — so a
// pair diffed with a seeded manager renders byte-identically to one diffed
// from scratch (pinned by tests/encode/encoding_template_test.cc).

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "encode/packet.h"
#include "encode/route_adv.h"
#include "ir/config.h"
#include "ir/policy.h"

namespace campion::encode {

// Canonical structural keys: two objects with equal keys encode to the same
// Boolean function in any manager with the same layout. Keys deliberately
// ignore names and source spans (those affect reporting, not semantics) and
// the ACL line's action (the match predicate is action-independent).
std::string PrefixListKey(const ir::PrefixList& list);
std::string CommunityListKey(const ir::CommunityList& list);
std::string AclLineMatchKey(const ir::AclLine& line);

class EncodingTemplate {
 public:
  // Encodes each structurally distinct list / ACL line of both
  // configurations once. `route_side`/`packet_side` skip building the
  // respective manager when the corresponding checks are disabled.
  //
  // `sift_witnesses` (set when the run will call Reorder) additionally
  // builds, per route map and per ACL, the cumulative first-match chains
  // the semantic diff recomputes inside every pair — taken/remaining per
  // clause or line, plus the permit union — and keeps them as extra sift
  // roots. Sifting the isolated list library alone can pick an order that
  // shrinks the library but inflates those chains (they conjoin fields the
  // individual lines keep separate); the witnesses put the coupled
  // structure into the sift objective. Seeded pairs re-intern the same
  // functions, so witness nodes they inherit are nodes they would have
  // built from scratch anyway.
  EncodingTemplate(const ir::RouterConfig& config1,
                   const ir::RouterConfig& config2, bool route_side = true,
                   bool packet_side = true, bool sift_witnesses = false);

  EncodingTemplate(const EncodingTemplate&) = delete;
  EncodingTemplate& operator=(const EncodingTemplate&) = delete;

  // Sifts both template managers to a better variable order, BEFORE the
  // template is frozen and shared: every pair manager seeded afterwards
  // inherits the sifted order via SeedFrom, so template lookup refs stay
  // valid everywhere with no per-manager invalidation. Must run on the
  // main thread between construction and fan-out. The template's own refs
  // (list maps, layout caches) are passed as sift roots, which both pins
  // them and lets the sift reclaim every dead intermediate the list
  // compilation left behind. Returns the two sifts' combined tallies.
  bdd::SiftResult Reorder(bdd::SiftMode mode);

  // Mark-and-compact both template managers, rewriting every ref the
  // template holds (list maps, layout caches, sift witnesses) through the
  // collector's remap. For a one-shot run this is pointless — Reorder
  // already reclaims dead intermediates — but a template that lives in the
  // daemon's cross-request cache pays for its construction garbage on
  // every byte of resident memory, so the cache compacts each template
  // once, after the one-time sift and BEFORE the first SeedFrom snapshot
  // (seeding copies the compacted arena, so seeded refs stay stable; the
  // template itself must never be compacted again once shared). Returns
  // the two collections' combined tallies.
  bdd::GcResult Compact();

  // The frozen managers and prototype layouts pair tasks seed from.
  const bdd::BddManager& route_manager() const { return route_mgr_; }
  const RouteAdvLayout& route_layout() const { return *route_layout_; }
  const bdd::BddManager& packet_manager() const { return packet_mgr_; }
  const PacketLayout& packet_layout() const { return *packet_layout_; }
  bool has_route_side() const { return route_layout_.has_value(); }
  bool has_packet_side() const { return packet_layout_.has_value(); }

  // Lookups. The returned ref was interned in the template manager and is
  // valid in any manager seeded from it. nullopt = not in the template
  // (the caller encodes privately).
  std::optional<bdd::BddRef> PrefixListPermits(
      const ir::PrefixList& list) const;
  std::optional<bdd::BddRef> CommunityListPermits(
      const ir::CommunityList& list) const;
  std::optional<bdd::BddRef> AclLineMatch(const ir::AclLine& line) const;

  // Build-size accounting for the template span / stats.
  std::size_t unique_prefix_lists() const { return prefix_lists_.size(); }
  std::size_t unique_community_lists() const {
    return community_lists_.size();
  }
  std::size_t unique_acl_lines() const { return acl_lines_.size(); }

 private:
  bdd::BddManager route_mgr_;
  bdd::BddManager packet_mgr_;
  std::optional<RouteAdvLayout> route_layout_;
  std::optional<PacketLayout> packet_layout_;
  std::unordered_map<std::string, bdd::BddRef> prefix_lists_;
  std::unordered_map<std::string, bdd::BddRef> community_lists_;
  std::unordered_map<std::string, bdd::BddRef> acl_lines_;
  // First-match chain witnesses (built only with `sift_witnesses`): extra
  // Reorder roots mirroring what SemanticDiffRouteMaps/SemanticDiffAcls
  // build per pair.
  std::vector<bdd::BddRef> route_sift_witnesses_;
  std::vector<bdd::BddRef> packet_sift_witnesses_;
};

}  // namespace campion::encode
