#include "encode/symbolic_field.h"

namespace campion::encode {

using util::U128;

bdd::BddRef SymbolicField::EqualsConst(bdd::BddManager& mgr,
                                       U128 value) const {
  return MatchPrefixBits(mgr, value, width_);
}

bdd::BddRef SymbolicField::MatchPrefixBits(bdd::BddManager& mgr, U128 value,
                                           int nbits) const {
  // Build bottom-up so each conjunction is a single MakeNode-shaped BDD.
  bdd::BddRef result = mgr.True();
  for (int i = nbits - 1; i >= 0; --i) {
    bdd::BddRef bit =
        ValueBit(value, i) ? mgr.VarTrue(VarAt(i)) : mgr.VarFalse(VarAt(i));
    result = mgr.And(bit, result);
  }
  return result;
}

bdd::BddRef SymbolicField::MatchMasked(bdd::BddManager& mgr, U128 value,
                                       U128 care) const {
  bdd::BddRef result = mgr.True();
  for (int i = width_ - 1; i >= 0; --i) {
    if (!ValueBit(care, i)) continue;
    bdd::BddRef bit =
        ValueBit(value, i) ? mgr.VarTrue(VarAt(i)) : mgr.VarFalse(VarAt(i));
    result = mgr.And(bit, result);
  }
  return result;
}

bdd::BddRef SymbolicField::Leq(bdd::BddManager& mgr, U128 value) const {
  // Walk from the least significant bit up, building
  //   leq_i = if value_bit then (field_bit ? rest : true) else (!field_bit && rest)
  bdd::BddRef result = mgr.True();
  for (int i = width_ - 1; i >= 0; --i) {
    bdd::BddRef bit = mgr.VarTrue(VarAt(i));
    if (ValueBit(value, i)) {
      result = mgr.Ite(bit, result, mgr.True());
    } else {
      result = mgr.Ite(bit, mgr.False(), result);
    }
  }
  return result;
}

bdd::BddRef SymbolicField::Geq(bdd::BddManager& mgr, U128 value) const {
  bdd::BddRef result = mgr.True();
  for (int i = width_ - 1; i >= 0; --i) {
    bdd::BddRef bit = mgr.VarTrue(VarAt(i));
    if (ValueBit(value, i)) {
      result = mgr.Ite(bit, result, mgr.False());
    } else {
      result = mgr.Ite(bit, mgr.True(), result);
    }
  }
  return result;
}

bdd::BddRef SymbolicField::InRange(bdd::BddManager& mgr, U128 low,
                                   U128 high) const {
  if (low > high) return mgr.False();
  return mgr.And(Geq(mgr, low), Leq(mgr, high));
}

std::vector<SymbolicField::Interval> SymbolicField::Intervals(
    bdd::BddManager& mgr, bdd::BddRef set) const {
  // The walk below assumes the field's bits appear MSB-first, top-down —
  // true in the declaration order but not after sifting. The view rebuilds
  // `set` under the declaration order (a no-op when no reorder ran), so
  // extracted intervals are identical whether or not the manager sifted.
  const bdd::BddManager::OrderedView view = mgr.DeclarationOrderView(set);
  return IntervalsInDeclarationOrder(*view.mgr, view.ref);
}

void SymbolicField::AppendInterval(std::vector<Interval>& intervals, U128 low,
                                   U128 high) {
  // Adjacency is tested as `back.high == low - 1` with a low != 0 guard,
  // never `back.high + 1 == low`: when back.high is the all-ones maximum
  // field value the increment wraps to 0 and a spurious merge would corrupt
  // the list.
  if (!intervals.empty() && low != U128() &&
      intervals.back().high == low - U128(1)) {
    intervals.back().high = high;  // Merge adjacent blocks.
  } else {
    intervals.push_back({low, high});
  }
}

std::vector<SymbolicField::Interval> SymbolicField::IntervalsInDeclarationOrder(
    const bdd::BddManager& mgr, bdd::BddRef set) const {
  std::vector<Interval> intervals;
  const bdd::Var past_end = first_ + static_cast<bdd::Var>(width_);
  // Walk the field's bits most-significant first. At depth d with value
  // prefix `base`, `node` is the BDD restricted to the decisions so far.
  // When the node no longer depends on the remaining field bits, the whole
  // aligned block [base, base + 2^(width-d) - 1] is uniformly in or out.
  //
  // Recursion is over (node, depth); depth increases strictly, so the
  // total work is bounded by width x visited nodes.
  auto rec = [&](auto&& self, bdd::BddRef node, int depth,
                 U128 base) -> void {
    U128 block = U128::Ones(width_ - depth);
    if (node == bdd::kFalse) return;
    if (node == bdd::kTrue) {
      AppendInterval(intervals, base, base + block);
      return;
    }
    if (depth == width_) {
      // Depends on variables outside the field: treat as nonempty (caller
      // should have projected). Conservatively include the single value.
      AppendInterval(intervals, base, base);
      return;
    }
    bdd::Var node_var = mgr.NodeVar(node);
    if (node_var >= past_end || node_var < first_) {
      // The whole subtree branches on variables outside the field (in
      // declaration order, descendants only sit lower), so no remaining
      // field bit is constrained: the entire block is uniformly nonempty.
      // One O(1) emit — descending bit-by-bit here would cost 2^(width-d)
      // single-value emits for the same merged interval.
      AppendInterval(intervals, base, base + block);
      return;
    }
    bdd::Var expected = VarAt(depth);
    if (node_var > expected) {
      // The node skips this bit: both values of the bit lead to the same
      // subfunction.
      self(self, node, depth + 1, base);
      self(self, node, depth + 1, base | (U128(1) << (width_ - 1 - depth)));
      return;
    }
    self(self, mgr.NodeLow(node), depth + 1, base);
    self(self, mgr.NodeHigh(node), depth + 1,
         base | (U128(1) << (width_ - 1 - depth)));
  };
  rec(rec, set, 0, U128());
  return intervals;
}

util::U128 SymbolicField::Decode(const bdd::Cube& cube) const {
  U128 value;
  for (int i = 0; i < width_; ++i) {
    value = value << 1;
    bdd::Var v = VarAt(i);
    if (v < cube.size() && cube[v] == 1) value = value | U128(1);
  }
  return value;
}

}  // namespace campion::encode
