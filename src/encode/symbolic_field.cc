#include "encode/symbolic_field.h"

namespace campion::encode {

bdd::BddRef SymbolicField::EqualsConst(bdd::BddManager& mgr,
                                       std::uint32_t value) const {
  return MatchPrefixBits(mgr, value, width_);
}

bdd::BddRef SymbolicField::MatchPrefixBits(bdd::BddManager& mgr,
                                           std::uint32_t value,
                                           int nbits) const {
  // Build bottom-up so each conjunction is a single MakeNode-shaped BDD.
  bdd::BddRef result = mgr.True();
  for (int i = nbits - 1; i >= 0; --i) {
    bdd::BddRef bit =
        ValueBit(value, i) ? mgr.VarTrue(VarAt(i)) : mgr.VarFalse(VarAt(i));
    result = mgr.And(bit, result);
  }
  return result;
}

bdd::BddRef SymbolicField::MatchMasked(bdd::BddManager& mgr,
                                       std::uint32_t value,
                                       std::uint32_t care) const {
  bdd::BddRef result = mgr.True();
  for (int i = width_ - 1; i >= 0; --i) {
    if (!ValueBit(care, i)) continue;
    bdd::BddRef bit =
        ValueBit(value, i) ? mgr.VarTrue(VarAt(i)) : mgr.VarFalse(VarAt(i));
    result = mgr.And(bit, result);
  }
  return result;
}

bdd::BddRef SymbolicField::Leq(bdd::BddManager& mgr,
                               std::uint32_t value) const {
  // Walk from the least significant bit up, building
  //   leq_i = if value_bit then (field_bit ? rest : true) else (!field_bit && rest)
  bdd::BddRef result = mgr.True();
  for (int i = width_ - 1; i >= 0; --i) {
    bdd::BddRef bit = mgr.VarTrue(VarAt(i));
    if (ValueBit(value, i)) {
      result = mgr.Ite(bit, result, mgr.True());
    } else {
      result = mgr.Ite(bit, mgr.False(), result);
    }
  }
  return result;
}

bdd::BddRef SymbolicField::Geq(bdd::BddManager& mgr,
                               std::uint32_t value) const {
  bdd::BddRef result = mgr.True();
  for (int i = width_ - 1; i >= 0; --i) {
    bdd::BddRef bit = mgr.VarTrue(VarAt(i));
    if (ValueBit(value, i)) {
      result = mgr.Ite(bit, result, mgr.False());
    } else {
      result = mgr.Ite(bit, mgr.True(), result);
    }
  }
  return result;
}

bdd::BddRef SymbolicField::InRange(bdd::BddManager& mgr, std::uint32_t low,
                                   std::uint32_t high) const {
  if (low > high) return mgr.False();
  return mgr.And(Geq(mgr, low), Leq(mgr, high));
}

std::vector<SymbolicField::Interval> SymbolicField::Intervals(
    bdd::BddManager& mgr, bdd::BddRef set) const {
  // The walk below assumes the field's bits appear MSB-first, top-down —
  // true in the declaration order but not after sifting. The view rebuilds
  // `set` under the declaration order (a no-op when no reorder ran), so
  // extracted intervals are identical whether or not the manager sifted.
  const bdd::BddManager::OrderedView view = mgr.DeclarationOrderView(set);
  return IntervalsInDeclarationOrder(*view.mgr, view.ref);
}

std::vector<SymbolicField::Interval> SymbolicField::IntervalsInDeclarationOrder(
    const bdd::BddManager& mgr, bdd::BddRef set) const {
  std::vector<Interval> intervals;
  // Walk the field's bits most-significant first. At depth d with value
  // prefix `base`, `node` is the BDD restricted to the decisions so far.
  // When the node no longer depends on the remaining field bits, the whole
  // aligned block [base, base + 2^(width-d) - 1] is uniformly in or out.
  auto emit = [&](std::uint32_t low, std::uint32_t high) {
    if (!intervals.empty() && intervals.back().high + 1 == low) {
      intervals.back().high = high;  // Merge adjacent blocks.
    } else {
      intervals.push_back({low, high});
    }
  };
  // Recursion is over (node, depth); depth increases strictly, so the
  // total work is bounded by width x visited nodes.
  auto rec = [&](auto&& self, bdd::BddRef node, int depth,
                 std::uint32_t base) -> void {
    std::uint32_t block =
        width_ - depth >= 32 ? 0xFFFFFFFFu
                             : ((1u << (width_ - depth)) - 1);
    if (node == bdd::kFalse) return;
    if (node == bdd::kTrue) {
      emit(base, base + block);
      return;
    }
    bdd::Var node_var = mgr.NodeVar(node);
    if (depth == width_) {
      // Depends on variables outside the field: treat as nonempty (caller
      // should have projected). Conservatively include the single value.
      emit(base, base);
      return;
    }
    bdd::Var expected = VarAt(depth);
    if (node_var > expected || node_var < first_) {
      // The node skips this bit (or sits outside the field): both values
      // of the bit lead to the same subfunction.
      self(self, node, depth + 1, base);
      self(self, node, depth + 1, base | (1u << (width_ - 1 - depth)));
      return;
    }
    self(self, mgr.NodeLow(node), depth + 1, base);
    self(self, mgr.NodeHigh(node), depth + 1,
         base | (1u << (width_ - 1 - depth)));
  };
  rec(rec, set, 0, 0);
  return intervals;
}

std::uint32_t SymbolicField::Decode(const bdd::Cube& cube) const {
  std::uint32_t value = 0;
  for (int i = 0; i < width_; ++i) {
    value <<= 1;
    bdd::Var v = VarAt(i);
    if (v < cube.size() && cube[v] == 1) value |= 1u;
  }
  return value;
}

}  // namespace campion::encode
