#pragma once

// Symbolic route advertisements.
//
// A route advertisement is encoded over a fixed BDD variable order as
// (IPv4 layout, unchanged from the original encoder):
//   [0..31]   destination prefix address bits (most significant first)
//   [32..37]  prefix length (6-bit unsigned, values 0..32)
//   [38..39]  source protocol (connected/static/ospf/bgp), for
//             redistribution policies that match on protocol
//   [40..55]  route tag (16-bit unsigned)
//   [56..71]  metric / MED (16-bit unsigned)
//   [72..]    one variable per community known to the differencing task
//             ("the route carries community c"), then any uninterpreted
//             predicate variables allocated for match kinds the encoder
//             does not model bit-precisely.
//
// The IPv6 layout widens the address field to 128 bits ([0..127]) and the
// length field to 8 bits (values 0..128); everything after shifts up. Both
// address and length fields are DeclareVarBlock groups either way.
//
// Address bits beyond the prefix length are deliberately unconstrained:
// every predicate we build constrains only bits below its base prefix
// length *and* implies a minimum length, so all encodings of the same
// concrete prefix agree on every predicate. Emptiness and subset checks are
// therefore faithful to concrete prefix sets.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "encode/symbolic_field.h"
#include "ir/policy.h"
#include "util/community.h"
#include "util/ip.h"
#include "util/prefix_range.h"

namespace campion::encode {

// A decoded, concrete route advertisement (one point of a difference set).
struct RouteAdvExample {
  util::IpPrefix prefix;
  std::vector<util::Community> communities;
  ir::Protocol protocol = ir::Protocol::kBgp;
  std::uint32_t tag = 0;
  std::uint32_t metric = 0;

  std::string ToString() const;
};

class RouteAdvLayout {
 public:
  // `communities` is the universe of community constants for this task
  // (typically the union over both configurations being compared).
  RouteAdvLayout(bdd::BddManager& mgr,
                 std::vector<util::Community> communities,
                 util::AddressFamily family = util::AddressFamily::kIpv4);

  // Rebinds a prototype layout onto `mgr`, which must have been seeded from
  // the prototype's manager (BddManager::SeedFrom): variable offsets and
  // cached refs (valid_, uninterpreted predicates) are copied verbatim and
  // stay meaningful because seeding preserves arena indices. No variables
  // are allocated — the seeded manager already carries the prototype's.
  RouteAdvLayout(bdd::BddManager& mgr, const RouteAdvLayout& proto);

  bdd::BddManager& manager() const { return mgr_; }
  util::AddressFamily family() const { return family_; }

  // Length field is valid (<= the family's maximum prefix length). Conjoin
  // once at the root of any enumeration so spurious lengths never appear in
  // examples.
  bdd::BddRef Valid() const { return valid_; }

  // The advertised prefix lies in the given prefix range. Ranges of the
  // other family match nothing.
  bdd::BddRef MatchPrefixRange(const util::PrefixRange& range) const;
  // The advertised prefix is exactly `p`.
  bdd::BddRef MatchExactPrefix(const util::IpPrefix& p) const;
  bdd::BddRef HasCommunity(util::Community c) const;
  // The route carries no community at all.
  bdd::BddRef NoCommunities() const;
  bdd::BddRef ProtocolIs(ir::Protocol p) const;
  bdd::BddRef TagEquals(std::uint32_t tag) const;
  bdd::BddRef MetricEquals(std::uint32_t metric) const;

  // A fresh uninterpreted predicate variable, used for match conditions we
  // do not model bit-precisely. Same (label) => same variable.
  bdd::BddRef UninterpretedPredicate(const std::string& label);

  // Every BddRef this layout holds onto (valid_, uninterpreted predicate
  // refs). Passed as roots to BddManager::Sift so reordering can reclaim
  // dead nodes without invalidating the layout.
  std::vector<bdd::BddRef> SiftRoots() const;

  // The same handles as mutable pointers, for BddManager::GarbageCollect:
  // compaction moves nodes, so the collector rewrites these in place. Any
  // ref the layout holds but does not list here would dangle.
  std::vector<bdd::BddRef*> GcRoots();

  // Variable masks for quantification.
  // True exactly on the prefix address + length variables.
  std::vector<bool> PrefixVarMask() const;
  // True on everything except the prefix address + length variables.
  std::vector<bool> NonPrefixVarMask() const;
  // True exactly on the community variables.
  std::vector<bool> CommunityVarMask() const;

  const std::vector<util::Community>& communities() const {
    return communities_;
  }

  RouteAdvExample Decode(const bdd::Cube& cube) const;

  // Renders one satisfying path cube of a community-space predicate as a
  // human-readable condition, e.g. "10:10, not 10:11" (don't-care
  // communities are omitted). Helper for the exhaustive community
  // localization extension (§4 of the paper sketches it as future work).
  std::string DescribeCommunityCube(const bdd::Cube& cube) const;

 private:
  bdd::BddManager& mgr_;
  util::AddressFamily family_ = util::AddressFamily::kIpv4;
  SymbolicField addr_;
  SymbolicField length_;
  SymbolicField protocol_;
  SymbolicField tag_;
  SymbolicField metric_;
  std::vector<util::Community> communities_;
  std::map<util::Community, bdd::Var> community_vars_;
  std::map<std::string, bdd::BddRef> uninterpreted_;
  bdd::BddRef valid_;
};

}  // namespace campion::encode
