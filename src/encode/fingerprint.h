#pragma once

// Structural fingerprints for incremental re-diffing (the daemon's result
// cache keys on these; see src/server/result_cache.h).
//
// The PR 5 canonical keys (PrefixListKey / CommunityListKey /
// AclLineMatchKey) deliberately ignore names, actions, declaration order,
// and source spans — everything the frozen encoding template's lookup
// surface does not depend on. A *result* cache cannot afford any of those
// omissions: the rendered report quotes names, actions, exact `file:line`
// locations, and raw source text, so two configs that share every PR 5 key
// can still produce different reports. ConfigCanonicalKey therefore
// serializes the COMPLETE parsed IR — the PR 5 keys where they exist, plus
// names, actions, declaration order, every remaining semantic field
// (route-map clauses, static routes, interfaces, OSPF, BGP, admin
// distances), and every SourceSpan including its raw text.
//
// Soundness contract: parse is deterministic, and every byte of a rendered
// report (text or JSON) is a function of the two parsed RouterConfigs plus
// the diff options — so equal canonical keys imply byte-identical reports.
// The converse is intentionally not required: a config edit that leaves the
// IR and spans unchanged (e.g. trailing whitespace after the last parsed
// line) still hits, which is exactly the incremental re-diff win.
//
// The serialization is unambiguous: strings are length-prefixed, numbers
// are delimited decimals, and optionals encode presence explicitly, so no
// two distinct IRs share a key.

#include <cstdint>
#include <string>

#include "ir/config.h"

namespace campion::encode {

// The full canonical serialization of one parsed router configuration.
std::string ConfigCanonicalKey(const ir::RouterConfig& config);

// FNV-1a digest of ConfigCanonicalKey, for headers and debug views. The
// result cache maps on the full key string; the digest is display-only.
std::uint64_t ConfigFingerprint(const ir::RouterConfig& config);

}  // namespace campion::encode
