#include "encode/fingerprint.h"

#include "encode/encoding_template.h"
#include "util/hash.h"

namespace campion::encode {
namespace {

// Unambiguous primitives: length-prefixed strings, delimited decimals,
// explicit presence markers for optionals.
void Str(std::string& out, const std::string& s) {
  out += std::to_string(s.size());
  out += ':';
  out += s;
  out += ';';
}

void U32(std::string& out, std::uint32_t value) {
  out += std::to_string(value);
  out += ',';
}

void I32(std::string& out, int value) {
  out += std::to_string(value);
  out += ',';
}

void Flag(std::string& out, bool value) { out += value ? '1' : '0'; }

template <typename T>
void OptU32(std::string& out, const std::optional<T>& value) {
  if (value.has_value()) {
    out += '+';
    U32(out, static_cast<std::uint32_t>(*value));
  } else {
    out += '-';
  }
}

void Span(std::string& out, const util::SourceSpan& span) {
  Str(out, span.file);
  I32(out, span.first_line);
  I32(out, span.last_line);
  Str(out, span.text);
}

void Address(std::string& out, util::Ipv4Address addr) {
  U32(out, addr.bits());
}

void OptAddress(std::string& out,
                const std::optional<util::Ipv4Address>& addr) {
  if (addr.has_value()) {
    out += '+';
    Address(out, *addr);
  } else {
    out += '-';
  }
}

void PrefixKey(std::string& out, const util::Prefix& prefix) {
  U32(out, prefix.address().bits());
  I32(out, prefix.length());
}

void Action(std::string& out, ir::LineAction action) {
  out += action == ir::LineAction::kPermit ? 'p' : 'd';
}

void ClauseActionKey(std::string& out, ir::ClauseAction action) {
  switch (action) {
    case ir::ClauseAction::kPermit: out += 'p'; break;
    case ir::ClauseAction::kDeny: out += 'd'; break;
    case ir::ClauseAction::kFallThrough: out += 'f'; break;
  }
}

void Redistributions(std::string& out,
                     const std::vector<ir::Redistribution>& redistributions) {
  out += "redist[";
  for (const auto& r : redistributions) {
    U32(out, static_cast<std::uint32_t>(r.from));
    Str(out, r.route_map);
    Span(out, r.span);
  }
  out += ']';
}

}  // namespace

std::string ConfigCanonicalKey(const ir::RouterConfig& config) {
  std::string key;
  key.reserve(1024);
  key += "cfg1{";
  Str(key, config.hostname);
  Str(key, ir::ToString(config.vendor));
  Str(key, config.source_file);

  key += "ifaces[";
  for (const auto& iface : config.interfaces) {
    Str(key, iface.name);
    OptAddress(key, iface.address);
    I32(key, iface.prefix_length);
    Flag(key, iface.shutdown);
    OptU32(key, iface.ospf_cost);
    OptU32(key, iface.ospf_area);
    Flag(key, iface.ospf_enabled);
    Flag(key, iface.ospf_passive);
    Str(key, iface.in_acl);
    Str(key, iface.out_acl);
    Span(key, iface.span);
  }
  key += ']';

  key += "static[";
  for (const auto& route : config.static_routes) {
    PrefixKey(key, route.prefix);
    OptAddress(key, route.next_hop);
    Str(key, route.next_hop_interface);
    I32(key, route.admin_distance);
    OptU32(key, route.tag);
    Span(key, route.span);
  }
  key += ']';

  // Named policy objects: the PR 5 structural key carries the semantic
  // payload; name, declaration order (map order is the canonical order both
  // the diff and the report use), and spans carry everything it omits.
  key += "plists[";
  for (const auto& [name, list] : config.prefix_lists) {
    Str(key, name);
    Str(key, PrefixListKey(list));
    Span(key, list.span);
    for (const auto& entry : list.entries) Span(key, entry.span);
  }
  key += ']';

  key += "clists[";
  for (const auto& [name, list] : config.community_lists) {
    Str(key, name);
    Str(key, CommunityListKey(list));
    Span(key, list.span);
    for (const auto& entry : list.entries) Span(key, entry.span);
  }
  key += ']';

  key += "aspaths[";
  for (const auto& [name, list] : config.as_path_lists) {
    Str(key, name);
    Span(key, list.span);
    for (const auto& entry : list.entries) {
      Action(key, entry.action);
      Str(key, entry.regex);
      Span(key, entry.span);
    }
  }
  key += ']';

  key += "rmaps[";
  for (const auto& [name, map] : config.route_maps) {
    Str(key, name);
    ClauseActionKey(key, map.default_action);
    Span(key, map.span);
    for (const auto& clause : map.clauses) {
      I32(key, clause.sequence);
      Str(key, clause.term_name);
      ClauseActionKey(key, clause.action);
      Span(key, clause.span);
      key += "m[";
      for (const auto& match : clause.matches) {
        U32(key, static_cast<std::uint32_t>(match.kind));
        for (const auto& n : match.names) Str(key, n);
        key += '|';
        U32(key, match.value);
        U32(key, static_cast<std::uint32_t>(match.protocol));
        Span(key, match.span);
      }
      key += ']';
      key += "s[";
      for (const auto& set : clause.sets) {
        U32(key, static_cast<std::uint32_t>(set.kind));
        U32(key, set.value);
        for (const auto& c : set.communities) U32(key, c.value());
        key += '|';
        Address(key, set.next_hop);
        Span(key, set.span);
      }
      key += ']';
    }
  }
  key += ']';

  key += "acls[";
  for (const auto& [name, acl] : config.acls) {
    Str(key, name);
    // Emitted only for IPv6 so IPv4 canonical keys stay byte-identical to
    // pre-dual-stack builds (the per-line AclLineMatchKey is family-tagged,
    // but a line-less v6 ACL must still differ from its v4 twin).
    if (acl.family == util::AddressFamily::kIpv6) key += "f6";
    Span(key, acl.span);
    for (const auto& line : acl.lines) {
      // AclLineMatchKey covers every match field but deliberately not the
      // action — the one omission this key exists to repair.
      Action(key, line.action);
      Str(key, AclLineMatchKey(line));
      Span(key, line.span);
    }
  }
  key += ']';

  key += "ospf";
  if (config.ospf.has_value()) {
    key += '{';
    U32(key, config.ospf->process_id);
    OptAddress(key, config.ospf->router_id);
    U32(key, config.ospf->reference_bandwidth_mbps);
    Redistributions(key, config.ospf->redistributions);
    Span(key, config.ospf->span);
    key += '}';
  } else {
    key += '-';
  }

  key += "bgp";
  if (config.bgp.has_value()) {
    key += '{';
    U32(key, config.bgp->asn);
    OptAddress(key, config.bgp->router_id);
    for (const auto& p : config.bgp->networks) PrefixKey(key, p);
    key += '|';
    for (const auto& neighbor : config.bgp->neighbors) {
      Address(key, neighbor.ip);
      U32(key, neighbor.remote_as);
      Str(key, neighbor.description);
      Str(key, neighbor.import_policy);
      Str(key, neighbor.export_policy);
      Flag(key, neighbor.route_reflector_client);
      Flag(key, neighbor.send_community);
      Flag(key, neighbor.next_hop_self);
      Span(key, neighbor.span);
    }
    Redistributions(key, config.bgp->redistributions);
    Span(key, config.bgp->span);
    key += '}';
  } else {
    key += '-';
  }

  key += "ad{";
  I32(key, config.admin_distances.connected);
  I32(key, config.admin_distances.static_route);
  I32(key, config.admin_distances.ebgp);
  I32(key, config.admin_distances.ospf);
  I32(key, config.admin_distances.ibgp);
  key += "}}";
  return key;
}

std::uint64_t ConfigFingerprint(const ir::RouterConfig& config) {
  return util::Fnv1a64(ConfigCanonicalKey(config));
}

}  // namespace campion::encode
