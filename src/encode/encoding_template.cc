#include "encode/encoding_template.h"

#include <algorithm>
#include <vector>

#include "encode/policy_encoder.h"
#include "obs/metrics.h"

namespace campion::encode {
namespace {

void AppendU32(std::string& out, std::uint32_t value) {
  out += std::to_string(value);
  out += ',';
}

// 128-bit values (IPv6 addresses) keyed limb-wise. IPv4 keys keep their
// original single-limb form so v4 keys are byte-identical to pre-dual-stack
// builds; the family-specific key prefixes ("pl6:", "al6:") keep the two
// families from ever colliding.
void AppendU128(std::string& out, util::U128 value) {
  out += std::to_string(value.hi());
  out += ':';
  out += std::to_string(value.lo());
  out += ',';
}

void AppendWildcard(std::string& out, const util::IpWildcard& w) {
  if (w.family() == util::AddressFamily::kIpv4) {
    AppendU32(out, w.address().bits());
    AppendU32(out, w.wildcard_bits());
  } else {
    AppendU128(out, w.address_wide());
    AppendU128(out, w.wildcard_wide());
  }
}

}  // namespace

std::string PrefixListKey(const ir::PrefixList& list) {
  const bool v6 = list.family == util::AddressFamily::kIpv6;
  std::string key = v6 ? "pl6:" : "pl:";
  for (const auto& entry : list.entries) {
    key += entry.action == ir::LineAction::kPermit ? 'p' : 'd';
    if (v6) {
      AppendU128(key, entry.range.prefix().address().bits());
    } else {
      AppendU32(key, static_cast<std::uint32_t>(
                         entry.range.prefix().address().bits().lo()));
    }
    AppendU32(key, static_cast<std::uint32_t>(entry.range.prefix().length()));
    AppendU32(key, static_cast<std::uint32_t>(entry.range.low()));
    AppendU32(key, static_cast<std::uint32_t>(entry.range.high()));
    key += ';';
  }
  return key;
}

std::string CommunityListKey(const ir::CommunityList& list) {
  std::string key = "cl:";
  for (const auto& entry : list.entries) {
    key += entry.action == ir::LineAction::kPermit ? 'p' : 'd';
    // An entry matches iff the route carries every community it names, so
    // within one entry the member order (and duplicates) cannot matter.
    std::vector<util::Community> members = entry.all_of;
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    for (util::Community c : members) AppendU32(key, c.value());
    key += ';';
  }
  return key;
}

std::string AclLineMatchKey(const ir::AclLine& line) {
  // The line's action is excluded: the match predicate is the same for a
  // permit and a deny over the same header fields.
  const bool v6 = line.src.family() == util::AddressFamily::kIpv6 ||
                  line.dst.family() == util::AddressFamily::kIpv6;
  std::string key = v6 ? "al6:" : "al:";
  AppendU32(key, line.protocol ? std::uint32_t{*line.protocol} + 1 : 0);
  AppendWildcard(key, line.src);
  AppendWildcard(key, line.dst);
  key += 's';
  for (const auto& r : line.src_ports) {
    AppendU32(key, r.low);
    AppendU32(key, r.high);
  }
  key += 'd';
  for (const auto& r : line.dst_ports) {
    AppendU32(key, r.low);
    AppendU32(key, r.high);
  }
  AppendU32(key, line.icmp_type ? std::uint32_t{*line.icmp_type} + 1 : 0);
  key += line.established ? 'e' : '-';
  return key;
}

EncodingTemplate::EncodingTemplate(const ir::RouterConfig& config1,
                                   const ir::RouterConfig& config2,
                                   bool route_side, bool packet_side,
                                   bool sift_witnesses) {
  if (route_side) {
    // The same community universe every route-map pair task uses: the union
    // over both configurations. Seeded pair layouts copy this layout, so
    // their variable order matches a from-scratch pair's exactly.
    std::vector<util::Community> communities = config1.AllCommunities();
    auto more = config2.AllCommunities();
    communities.insert(communities.end(), more.begin(), more.end());
    route_layout_.emplace(route_mgr_, std::move(communities));
    for (const ir::RouterConfig* config : {&config1, &config2}) {
      // The encoder resolves nothing by name here; it is used only for the
      // list-to-BDD compilation loops (shared with the per-pair path).
      PolicyEncoder encoder(*route_layout_, *config);
      for (const auto& [name, list] : config->prefix_lists) {
        // The template's layouts are IPv4; IPv6 objects are encoded
        // per-pair on a v6 layout (v6 pairs bypass the template entirely).
        if (list.family != util::AddressFamily::kIpv4) continue;
        auto [it, inserted] =
            prefix_lists_.try_emplace(PrefixListKey(list), bdd::kFalse);
        if (inserted) it->second = encoder.PrefixListPermits(list);
      }
      for (const auto& [name, list] : config->community_lists) {
        auto [it, inserted] =
            community_lists_.try_emplace(CommunityListKey(list), bdd::kFalse);
        if (inserted) it->second = encoder.CommunityListPermits(list);
      }
      if (sift_witnesses) {
        // Witness chains: the clause-guard fall-through structure
        // BuildRouteMapClasses walks per pair, in first-match form.
        for (const auto& [name, map] : config->route_maps) {
          bdd::BddRef remaining = route_layout_->Valid();
          bdd::BddRef permitted = bdd::kFalse;
          for (const auto& clause : map.clauses) {
            bdd::BddRef guard = encoder.ClauseGuard(clause);
            bdd::BddRef taken = route_mgr_.And(remaining, guard);
            remaining = route_mgr_.Diff(remaining, guard);
            if (clause.action == ir::ClauseAction::kPermit) {
              permitted = route_mgr_.Or(permitted, taken);
            }
            route_sift_witnesses_.push_back(taken);
          }
          route_sift_witnesses_.push_back(remaining);
          route_sift_witnesses_.push_back(permitted);
        }
      }
    }
    obs::Count("encode.template_prefix_lists",
               static_cast<double>(prefix_lists_.size()));
    obs::Count("encode.template_community_lists",
               static_cast<double>(community_lists_.size()));
  }
  if (packet_side) {
    packet_layout_.emplace(packet_mgr_);
    for (const ir::RouterConfig* config : {&config1, &config2}) {
      for (const auto& [name, acl] : config->acls) {
        if (acl.family != util::AddressFamily::kIpv4) continue;
        // Witness chain: the first-match classes BuildAclClasses derives
        // per pair (`here = remaining ∧ match`, `remaining \ here`, permit
        // union). Interning makes the second config's identical ACLs free.
        bdd::BddRef remaining = packet_mgr_.True();
        bdd::BddRef permitted = bdd::kFalse;
        for (const auto& line : acl.lines) {
          auto [it, inserted] =
              acl_lines_.try_emplace(AclLineMatchKey(line), bdd::kFalse);
          if (inserted) it->second = packet_layout_->MatchLine(line);
          if (sift_witnesses) {
            bdd::BddRef here = packet_mgr_.And(remaining, it->second);
            remaining = packet_mgr_.Diff(remaining, here);
            if (line.action == ir::LineAction::kPermit) {
              permitted = packet_mgr_.Or(permitted, here);
            }
            packet_sift_witnesses_.push_back(here);
          }
        }
        if (sift_witnesses) {
          packet_sift_witnesses_.push_back(remaining);
          packet_sift_witnesses_.push_back(permitted);
        }
      }
    }
    obs::Count("encode.template_acl_lines",
               static_cast<double>(acl_lines_.size()));
  }
}

bdd::SiftResult EncodingTemplate::Reorder(bdd::SiftMode mode) {
  bdd::SiftResult total;
  auto accumulate = [&total](const bdd::SiftResult& r) {
    total.passes += r.passes;
    total.swaps += r.swaps;
    total.nodes_before += r.nodes_before;
    total.nodes_after += r.nodes_after;
  };
  if (route_layout_) {
    std::vector<bdd::BddRef> roots = route_layout_->SiftRoots();
    for (const auto& [key, ref] : prefix_lists_) roots.push_back(ref);
    for (const auto& [key, ref] : community_lists_) roots.push_back(ref);
    roots.insert(roots.end(), route_sift_witnesses_.begin(),
                 route_sift_witnesses_.end());
    accumulate(route_mgr_.Sift(mode, &roots));
  }
  if (packet_layout_) {
    std::vector<bdd::BddRef> roots;
    for (const auto& [key, ref] : acl_lines_) roots.push_back(ref);
    roots.insert(roots.end(), packet_sift_witnesses_.begin(),
                 packet_sift_witnesses_.end());
    accumulate(packet_mgr_.Sift(mode, &roots));
  }
  return total;
}

bdd::GcResult EncodingTemplate::Compact() {
  bdd::GcResult total;
  auto accumulate = [&total](const bdd::GcResult& r) {
    total.live_before += r.live_before;
    total.live_after += r.live_after;
    total.reclaimed += r.reclaimed;
    total.arena_bytes_before += r.arena_bytes_before;
    total.arena_bytes_after += r.arena_bytes_after;
  };
  if (route_layout_) {
    std::vector<bdd::BddRef*> roots = route_layout_->GcRoots();
    for (auto& [key, ref] : prefix_lists_) roots.push_back(&ref);
    for (auto& [key, ref] : community_lists_) roots.push_back(&ref);
    for (bdd::BddRef& ref : route_sift_witnesses_) roots.push_back(&ref);
    accumulate(route_mgr_.GarbageCollect(roots));
  }
  if (packet_layout_) {
    std::vector<bdd::BddRef*> roots;
    for (auto& [key, ref] : acl_lines_) roots.push_back(&ref);
    for (bdd::BddRef& ref : packet_sift_witnesses_) roots.push_back(&ref);
    accumulate(packet_mgr_.GarbageCollect(roots));
  }
  return total;
}

std::optional<bdd::BddRef> EncodingTemplate::PrefixListPermits(
    const ir::PrefixList& list) const {
  auto it = prefix_lists_.find(PrefixListKey(list));
  if (it == prefix_lists_.end()) return std::nullopt;
  return it->second;
}

std::optional<bdd::BddRef> EncodingTemplate::CommunityListPermits(
    const ir::CommunityList& list) const {
  auto it = community_lists_.find(CommunityListKey(list));
  if (it == community_lists_.end()) return std::nullopt;
  return it->second;
}

std::optional<bdd::BddRef> EncodingTemplate::AclLineMatch(
    const ir::AclLine& line) const {
  auto it = acl_lines_.find(AclLineMatchKey(line));
  if (it == acl_lines_.end()) return std::nullopt;
  return it->second;
}

}  // namespace campion::encode
