#pragma once

// Symbolic packets for dataplane ACL differencing.
//
// Variable order (IPv4 layout, unchanged from the original encoder):
//   [0..31]    source IP
//   [32..63]   destination IP
//   [64..71]   IP protocol number
//   [72..87]   source port
//   [88..103]  destination port
//   [104..111] ICMP type
//   [112]      TCP "established" bit (ACK or RST set)
//
// The IPv6 layout is identical except the source and destination fields are
// 128 bits wide ([0..127] src, [128..255] dst, remaining fields shifted up
// accordingly). Each multi-bit field is a DeclareVarBlock group, so group
// sifting moves a 128-bit address as one unit.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "encode/symbolic_field.h"
#include "ir/policy.h"
#include "util/ip.h"

namespace campion::encode {

struct PacketExample {
  util::IpAddress src_ip;
  util::IpAddress dst_ip;
  std::uint8_t protocol = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t icmp_type = 0;
  bool established = false;

  std::string ToString() const;
};

class PacketLayout {
 public:
  explicit PacketLayout(
      bdd::BddManager& mgr,
      util::AddressFamily family = util::AddressFamily::kIpv4);

  // Rebinds a prototype layout onto `mgr`, which must have been seeded from
  // the prototype's manager (BddManager::SeedFrom): field offsets are
  // copied and no variables are allocated — the seeded manager already
  // carries the prototype's.
  PacketLayout(bdd::BddManager& mgr, const PacketLayout& proto);

  bdd::BddManager& manager() const { return mgr_; }
  util::AddressFamily family() const { return family_; }

  bdd::BddRef MatchSrc(const util::IpWildcard& w) const;
  bdd::BddRef MatchDst(const util::IpWildcard& w) const;
  bdd::BddRef MatchDstPrefix(const util::IpPrefix& p) const;
  bdd::BddRef MatchSrcPrefix(const util::IpPrefix& p) const;
  bdd::BddRef ProtocolIs(std::uint8_t protocol) const;
  bdd::BddRef SrcPortIn(const ir::PortRange& r) const;
  bdd::BddRef DstPortIn(const ir::PortRange& r) const;
  bdd::BddRef IcmpTypeIs(std::uint8_t type) const;
  // The packet belongs to an established TCP flow (ACK or RST set).
  bdd::BddRef Established() const;

  // The full match predicate of one ACL line.
  bdd::BddRef MatchLine(const ir::AclLine& line) const;

  // True exactly on the destination-IP variables (for header localization
  // of ACL differences onto destination prefixes).
  std::vector<bool> DstIpVarMask() const;
  std::vector<bool> NonDstIpVarMask() const;
  // True exactly on the source-IP variables.
  std::vector<bool> SrcIpVarMask() const;

  // Exact port/protocol localization: projects `set` onto the respective
  // field and returns the affected values as maximal intervals. Feeds the
  // "dstPort: 80, 443, 1024-65535" style rows of ACL difference reports.
  std::vector<ir::PortRange> AffectedDstPorts(bdd::BddRef set) const;
  std::vector<ir::PortRange> AffectedSrcPorts(bdd::BddRef set) const;
  std::vector<ir::PortRange> AffectedProtocols(bdd::BddRef set) const;

  PacketExample Decode(const bdd::Cube& cube) const;

 private:
  bdd::BddRef MatchWildcard(const SymbolicField& field,
                            const util::IpWildcard& w) const;

  bdd::BddManager& mgr_;
  util::AddressFamily family_ = util::AddressFamily::kIpv4;
  SymbolicField src_ip_;
  SymbolicField dst_ip_;
  SymbolicField protocol_;
  SymbolicField src_port_;
  SymbolicField dst_port_;
  SymbolicField icmp_type_;
  bdd::Var established_var_ = 0;
};

}  // namespace campion::encode
