#include "encode/packet.h"

namespace campion::encode {

namespace {
constexpr int kProtoWidth = 8;
constexpr int kPortWidth = 16;
constexpr int kIcmpWidth = 8;
}  // namespace

PacketLayout::PacketLayout(bdd::BddManager& mgr, util::AddressFamily family)
    : mgr_(mgr), family_(family) {
  const int ip_width = util::AddressWidth(family);
  bdd::Var first = mgr_.AddVars(2 * ip_width + kProtoWidth + 2 * kPortWidth +
                                kIcmpWidth + 1);
  src_ip_ = SymbolicField(first, ip_width);
  dst_ip_ = SymbolicField(first + ip_width, ip_width);
  protocol_ = SymbolicField(first + 2 * ip_width, kProtoWidth);
  src_port_ = SymbolicField(first + 2 * ip_width + kProtoWidth, kPortWidth);
  dst_port_ = SymbolicField(first + 2 * ip_width + kProtoWidth + kPortWidth,
                            kPortWidth);
  icmp_type_ = SymbolicField(
      first + 2 * ip_width + kProtoWidth + 2 * kPortWidth, kIcmpWidth);
  established_var_ =
      first + 2 * ip_width + kProtoWidth + 2 * kPortWidth + kIcmpWidth;
  // Each multi-bit field is an indivisible block for group sifting (the
  // established bit stands alone).
  mgr_.DeclareVarBlock(first, ip_width);
  mgr_.DeclareVarBlock(first + ip_width, ip_width);
  mgr_.DeclareVarBlock(first + 2 * ip_width, kProtoWidth);
  mgr_.DeclareVarBlock(first + 2 * ip_width + kProtoWidth, kPortWidth);
  mgr_.DeclareVarBlock(first + 2 * ip_width + kProtoWidth + kPortWidth,
                       kPortWidth);
  mgr_.DeclareVarBlock(first + 2 * ip_width + kProtoWidth + 2 * kPortWidth,
                       kIcmpWidth);
}

PacketLayout::PacketLayout(bdd::BddManager& mgr, const PacketLayout& proto)
    : mgr_(mgr),
      family_(proto.family_),
      src_ip_(proto.src_ip_),
      dst_ip_(proto.dst_ip_),
      protocol_(proto.protocol_),
      src_port_(proto.src_port_),
      dst_port_(proto.dst_port_),
      icmp_type_(proto.icmp_type_),
      established_var_(proto.established_var_) {}

bdd::BddRef PacketLayout::MatchWildcard(const SymbolicField& field,
                                        const util::IpWildcard& w) const {
  const int width = field.width();
  // Left-aligned in the field: the wildcard's bits are right-aligned in
  // AddressWidth(family) == width bits, so they line up directly; care is
  // the complement of the wildcard within the field width.
  util::U128 care = util::U128::Ones(width) ^
                    (w.wildcard_wide() & util::U128::Ones(width));
  return field.MatchMasked(mgr_, w.address_wide(), care);
}

bdd::BddRef PacketLayout::MatchSrc(const util::IpWildcard& w) const {
  return MatchWildcard(src_ip_, w);
}

bdd::BddRef PacketLayout::MatchDst(const util::IpWildcard& w) const {
  return MatchWildcard(dst_ip_, w);
}

bdd::BddRef PacketLayout::MatchDstPrefix(const util::IpPrefix& p) const {
  return dst_ip_.MatchPrefixBits(mgr_, p.address().bits(), p.length());
}

bdd::BddRef PacketLayout::MatchSrcPrefix(const util::IpPrefix& p) const {
  return src_ip_.MatchPrefixBits(mgr_, p.address().bits(), p.length());
}

bdd::BddRef PacketLayout::ProtocolIs(std::uint8_t protocol) const {
  return protocol_.EqualsConst(mgr_, protocol);
}

bdd::BddRef PacketLayout::SrcPortIn(const ir::PortRange& r) const {
  return src_port_.InRange(mgr_, r.low, r.high);
}

bdd::BddRef PacketLayout::DstPortIn(const ir::PortRange& r) const {
  return dst_port_.InRange(mgr_, r.low, r.high);
}

bdd::BddRef PacketLayout::IcmpTypeIs(std::uint8_t type) const {
  return icmp_type_.EqualsConst(mgr_, type);
}

bdd::BddRef PacketLayout::Established() const {
  return mgr_.VarTrue(established_var_);
}

bdd::BddRef PacketLayout::MatchLine(const ir::AclLine& line) const {
  bdd::BddRef match = mgr_.True();
  if (line.protocol) match = mgr_.And(match, ProtocolIs(*line.protocol));
  match = mgr_.And(match, MatchSrc(line.src));
  match = mgr_.And(match, MatchDst(line.dst));
  if (!line.src_ports.empty()) {
    bdd::BddRef ports = mgr_.False();
    for (const auto& r : line.src_ports) ports = mgr_.Or(ports, SrcPortIn(r));
    match = mgr_.And(match, ports);
  }
  if (!line.dst_ports.empty()) {
    bdd::BddRef ports = mgr_.False();
    for (const auto& r : line.dst_ports) ports = mgr_.Or(ports, DstPortIn(r));
    match = mgr_.And(match, ports);
  }
  if (line.icmp_type) {
    match = mgr_.And(match, IcmpTypeIs(*line.icmp_type));
  }
  if (line.established) {
    match = mgr_.And(match, Established());
  }
  return match;
}

std::vector<bool> PacketLayout::DstIpVarMask() const {
  std::vector<bool> mask(mgr_.num_vars(), false);
  for (int i = 0; i < dst_ip_.width(); ++i) mask[dst_ip_.VarAt(i)] = true;
  return mask;
}

std::vector<bool> PacketLayout::NonDstIpVarMask() const {
  std::vector<bool> mask = DstIpVarMask();
  mask.flip();
  return mask;
}

std::vector<bool> PacketLayout::SrcIpVarMask() const {
  std::vector<bool> mask(mgr_.num_vars(), false);
  for (int i = 0; i < src_ip_.width(); ++i) mask[src_ip_.VarAt(i)] = true;
  return mask;
}

namespace {

std::vector<ir::PortRange> FieldRanges(bdd::BddManager& mgr,
                                       const SymbolicField& field,
                                       bdd::BddRef set,
                                       std::vector<bool> keep_mask) {
  keep_mask.flip();
  bdd::BddRef projected = mgr.Exists(set, keep_mask);
  std::vector<ir::PortRange> ranges;
  for (const auto& interval : field.Intervals(mgr, projected)) {
    ranges.push_back({static_cast<std::uint16_t>(interval.low.lo()),
                      static_cast<std::uint16_t>(interval.high.lo())});
  }
  return ranges;
}

std::vector<bool> FieldMask(bdd::Var num_vars, const SymbolicField& field) {
  std::vector<bool> mask(num_vars, false);
  for (int i = 0; i < field.width(); ++i) mask[field.VarAt(i)] = true;
  return mask;
}

}  // namespace

std::vector<ir::PortRange> PacketLayout::AffectedDstPorts(
    bdd::BddRef set) const {
  return FieldRanges(mgr_, dst_port_, set,
                     FieldMask(mgr_.num_vars(), dst_port_));
}

std::vector<ir::PortRange> PacketLayout::AffectedSrcPorts(
    bdd::BddRef set) const {
  return FieldRanges(mgr_, src_port_, set,
                     FieldMask(mgr_.num_vars(), src_port_));
}

std::vector<ir::PortRange> PacketLayout::AffectedProtocols(
    bdd::BddRef set) const {
  return FieldRanges(mgr_, protocol_, set,
                     FieldMask(mgr_.num_vars(), protocol_));
}

PacketExample PacketLayout::Decode(const bdd::Cube& cube) const {
  PacketExample example;
  if (family_ == util::AddressFamily::kIpv4) {
    example.src_ip = util::Ipv4Address(
        static_cast<std::uint32_t>(src_ip_.Decode(cube).lo()));
    example.dst_ip = util::Ipv4Address(
        static_cast<std::uint32_t>(dst_ip_.Decode(cube).lo()));
  } else {
    example.src_ip = util::Ipv6Address(src_ip_.Decode(cube));
    example.dst_ip = util::Ipv6Address(dst_ip_.Decode(cube));
  }
  example.protocol = static_cast<std::uint8_t>(protocol_.Decode(cube).lo());
  example.src_port = static_cast<std::uint16_t>(src_port_.Decode(cube).lo());
  example.dst_port = static_cast<std::uint16_t>(dst_port_.Decode(cube).lo());
  example.icmp_type = static_cast<std::uint8_t>(icmp_type_.Decode(cube).lo());
  example.established = established_var_ < cube.size() &&
                        cube[established_var_] == 1;
  return example;
}

std::string PacketExample::ToString() const {
  std::string out = "srcIp: " + src_ip.ToString() +
                    ", dstIp: " + dst_ip.ToString() +
                    ", protocol: " + ir::ProtocolNumberToString(protocol);
  if (protocol == ir::kProtoTcp || protocol == ir::kProtoUdp) {
    out += ", srcPort: " + std::to_string(src_port) +
           ", dstPort: " + std::to_string(dst_port);
  }
  if (protocol == ir::kProtoTcp && established) out += ", established";
  if (protocol == ir::kProtoIcmp) {
    out += ", icmpType: " + std::to_string(icmp_type);
  }
  return out;
}

}  // namespace campion::encode
