#pragma once

// Juniper JunOS configuration frontend. Parses the hierarchical (curly
// brace) format for the feature subset the paper exercises — policy-options
// (prefix-lists, communities, policy-statements), firewall filters,
// routing-options (static routes, AS number), protocols ospf/bgp, and
// interfaces — into the vendor-independent IR with source spans.
//
// Semantics captured faithfully because the paper's findings depend on
// them:
//   * `prefix-list` in a `from` clause matches the listed prefixes
//     *exactly* (unlike Cisco's ge/le windows) — Difference 1 of Table 2.
//   * `community C members [a b]` requires the route to carry *both*
//     communities — Difference 2 of Table 2.
//   * A term without accept/reject falls through to the next term; a
//     policy with no matching term gets JunOS's default-accept for BGP.
//   * JunOS sends communities to BGP neighbors by default (the §5.2
//     structural difference against Cisco's explicit send-community).

#include <string>
#include <vector>

#include "ir/config.h"

namespace campion::juniper {

struct ParseResult {
  ir::RouterConfig config;
  std::vector<std::string> diagnostics;
};

ParseResult ParseJuniperConfig(const std::string& text,
                               const std::string& filename = "<input>");

ParseResult ParseJuniperFile(const std::string& path);

}  // namespace campion::juniper
