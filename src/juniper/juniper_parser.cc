#include "juniper/juniper_parser.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "util/community.h"

namespace campion::juniper {
namespace {

using ir::LineAction;
using ir::Protocol;
using util::Ipv4Address;
using util::IpWildcard;
using util::Prefix;

// ---------------------------------------------------------------------------
// Tokenizer: words, braces, semicolons; brackets group lists; '#' and '/*'
// comments; quoted strings become single tokens.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
};

std::vector<Token> Tokenize(const std::string& text,
                            std::vector<std::string>* diagnostics,
                            const std::string& filename) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
    } else if (c == '#') {
      while (i < n && text[i] != '\n') ++i;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
    } else if (c == '{' || c == '}' || c == ';' || c == '[' || c == ']') {
      tokens.push_back({std::string(1, c), line});
      ++i;
    } else if (c == '"') {
      std::size_t start = ++i;
      while (i < n && text[i] != '"') {
        if (text[i] == '\n') ++line;
        ++i;
      }
      tokens.push_back({text.substr(start, i - start), line});
      if (i < n) {
        ++i;
      } else {
        diagnostics->push_back(filename + ": unterminated string literal");
      }
    } else {
      std::size_t start = i;
      while (i < n && !strchr(" \t\r\n{};[]\"#", text[i])) ++i;
      tokens.push_back({text.substr(start, i - start), line});
    }
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Hierarchy tree
// ---------------------------------------------------------------------------

struct Node {
  std::vector<std::string> words;
  std::vector<Node> children;
  bool is_block = false;
  int first_line = 0;
  int last_line = 0;

  const std::string& Word(std::size_t i) const {
    static const std::string empty;
    return i < words.size() ? words[i] : empty;
  }
  // The first child block/statement whose first word is `name`.
  const Node* Find(const std::string& name) const {
    for (const auto& child : children) {
      if (!child.words.empty() && child.words[0] == name) return &child;
    }
    return nullptr;
  }
};

class TreeBuilder {
 public:
  TreeBuilder(std::vector<Token> tokens, std::vector<std::string>* diagnostics,
              std::string filename)
      : tokens_(std::move(tokens)),
        diagnostics_(diagnostics),
        filename_(std::move(filename)) {}

  Node Build() {
    Node root;
    root.is_block = true;
    root.first_line = 1;
    ParseChildren(root);
    return root;
  }

 private:
  bool Done() const { return pos_ >= tokens_.size(); }
  const Token& Peek() const { return tokens_[pos_]; }

  void ParseChildren(Node& parent) {
    while (!Done() && Peek().text != "}") {
      ParseStatement(parent);
    }
    if (!Done()) {
      parent.last_line = Peek().line;
      ++pos_;  // consume '}'
    } else {
      parent.last_line = tokens_.empty() ? 1 : tokens_.back().line;
    }
  }

  void ParseStatement(Node& parent) {
    Node node;
    node.first_line = Peek().line;
    bool in_bracket = false;
    while (!Done()) {
      const Token& token = Peek();
      if (token.text == "{") {
        ++pos_;
        node.is_block = true;
        ParseChildren(node);
        break;
      }
      if (token.text == ";") {
        node.last_line = token.line;
        ++pos_;
        break;
      }
      if (token.text == "[") {
        in_bracket = true;
        ++pos_;
        continue;
      }
      if (token.text == "]") {
        in_bracket = false;
        ++pos_;
        continue;
      }
      if (token.text == "}") {
        // Missing semicolon before '}': tolerate.
        diagnostics_->push_back(filename_ + ":" +
                                std::to_string(token.line) +
                                ": expected ';' before '}'");
        node.last_line = token.line;
        break;
      }
      node.words.push_back(token.text);
      node.last_line = token.line;
      ++pos_;
    }
    (void)in_bracket;
    if (!node.words.empty() || node.is_block) {
      parent.children.push_back(std::move(node));
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<std::string>* diagnostics_;
  std::string filename_;
};

// ---------------------------------------------------------------------------
// IR conversion
// ---------------------------------------------------------------------------

std::optional<std::uint32_t> ParseNumber(const std::string& token) {
  std::uint32_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return value;
}

// Areas may be written as integers ("0") or dotted quads ("0.0.0.0").
std::optional<std::uint32_t> ParseArea(const std::string& token) {
  if (token.find('.') != std::string::npos) {
    auto ip = Ipv4Address::Parse(token);
    if (!ip) return std::nullopt;
    return ip->bits();
  }
  return ParseNumber(token);
}

std::optional<std::uint8_t> ParseIpProtocol(const std::string& token) {
  if (token == "icmp") return ir::kProtoIcmp;
  if (token == "tcp") return ir::kProtoTcp;
  if (token == "udp") return ir::kProtoUdp;
  if (token == "icmp6" || token == "icmpv6") return ir::kProtoIcmpv6;
  if (token == "ospf") return ir::kProtoOspf;
  if (auto n = ParseNumber(token); n && *n <= 255) {
    return static_cast<std::uint8_t>(*n);
  }
  return std::nullopt;
}

class Converter {
 public:
  Converter(const std::string& text, std::string filename)
      : filename_(std::move(filename)) {
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines_.push_back(line);
    }
    result_.config.vendor = ir::Vendor::kJuniper;
    result_.config.source_file = filename_;
  }

  ParseResult Run(const Node& root) {
    if (const Node* system = root.Find("system")) ConvertSystem(*system);
    if (const Node* interfaces = root.Find("interfaces")) {
      ConvertInterfaces(*interfaces);
    }
    if (const Node* options = root.Find("routing-options")) {
      ConvertRoutingOptions(*options);
    }
    if (const Node* options = root.Find("policy-options")) {
      ConvertPolicyOptions(*options);
    }
    if (const Node* firewall = root.Find("firewall")) {
      ConvertFirewall(*firewall);
    }
    if (const Node* protocols = root.Find("protocols")) {
      if (const Node* ospf = protocols->Find("ospf")) ConvertOspf(*ospf);
      if (const Node* bgp = protocols->Find("bgp")) ConvertBgp(*bgp);
    }
    return std::move(result_);
  }

 private:
  ir::RouterConfig& config() { return result_.config; }

  void Diagnose(const Node& node, const std::string& message) {
    result_.diagnostics.push_back(filename_ + ":" +
                                  std::to_string(node.first_line) + ": " +
                                  message);
  }

  util::SourceSpan Span(const Node& node) const {
    util::SourceSpan span;
    span.file = filename_;
    span.first_line = node.first_line;
    span.last_line = node.last_line;
    std::string text;
    for (int i = node.first_line;
         i <= node.last_line && i <= static_cast<int>(lines_.size()); ++i) {
      if (!text.empty()) text += "\n";
      text += lines_[i - 1];
    }
    span.text = text;
    return span;
  }

  // --- system ---------------------------------------------------------------

  void ConvertSystem(const Node& system) {
    if (const Node* hostname = system.Find("host-name")) {
      config().hostname = hostname->Word(1);
    }
  }

  // --- interfaces -------------------------------------------------------------

  void ConvertInterfaces(const Node& interfaces) {
    for (const Node& physical : interfaces.children) {
      if (!physical.is_block || physical.words.empty()) continue;
      const std::string& base_name = physical.words[0];
      bool disabled = physical.Find("disable") != nullptr;
      bool has_unit = false;
      for (const Node& unit : physical.children) {
        if (unit.Word(0) != "unit" || !unit.is_block) continue;
        has_unit = true;
        ir::Interface iface;
        iface.name = base_name + "." + unit.Word(1);
        iface.shutdown = disabled || unit.Find("disable") != nullptr;
        iface.span = Span(unit);
        if (const Node* family = unit.Find("family")) {
          if (family->Word(1) == "inet") {
            if (const Node* address = family->Find("address")) {
              if (auto prefix = Prefix::Parse(address->Word(1))) {
                // Keep the host address; the subnet is derived from it.
                iface.address = Ipv4Address::Parse(
                    address->Word(1).substr(0, address->Word(1).find('/')));
                iface.prefix_length = prefix->length();
              } else {
                Diagnose(*address, "bad interface address");
              }
            }
          }
        }
        config().interfaces.push_back(std::move(iface));
      }
      if (!has_unit) {
        ir::Interface iface;
        iface.name = base_name;
        iface.shutdown = disabled;
        iface.span = Span(physical);
        config().interfaces.push_back(std::move(iface));
      }
    }
  }

  // --- routing-options ----------------------------------------------------------

  void ConvertRoutingOptions(const Node& options) {
    if (const Node* asn = options.Find("autonomous-system")) {
      if (auto value = ParseNumber(asn->Word(1))) local_as_ = *value;
    }
    if (const Node* router_id = options.Find("router-id")) {
      router_id_ = Ipv4Address::Parse(router_id->Word(1));
    }
    if (const Node* static_block = options.Find("static")) {
      for (const Node& route : static_block->children) {
        if (route.Word(0) != "route") continue;
        ConvertStaticRoute(route);
      }
    }
  }

  void ConvertStaticRoute(const Node& route) {
    auto prefix = Prefix::Parse(route.Word(1));
    if (!prefix) return Diagnose(route, "bad static route prefix");
    ir::StaticRoute r;
    r.prefix = *prefix;
    r.admin_distance = 5;  // JunOS static route default preference.
    r.span = Span(route);
    auto apply = [&](const Node& item) {
      if (item.Word(0) == "next-hop") {
        if (auto ip = Ipv4Address::Parse(item.Word(1))) {
          r.next_hop = *ip;
        } else {
          r.next_hop_interface = item.Word(1);
        }
      } else if (item.Word(0) == "preference") {
        if (auto pref = ParseNumber(item.Word(1))) {
          r.admin_distance = static_cast<int>(*pref);
        }
      } else if (item.Word(0) == "tag") {
        if (auto tag = ParseNumber(item.Word(1))) r.tag = *tag;
      }
    };
    if (route.is_block) {
      for (const Node& item : route.children) apply(item);
    } else if (route.words.size() >= 4) {
      // Inline form: route P next-hop X;
      Node inline_item;
      inline_item.words.assign(route.words.begin() + 2, route.words.end());
      apply(inline_item);
    }
    config().static_routes.push_back(std::move(r));
  }

  // --- policy-options --------------------------------------------------------------

  void ConvertPolicyOptions(const Node& options) {
    // Two passes: named lists first, so policy-statements can resolve
    // communities defined later in the file.
    for (const Node& child : options.children) {
      const std::string& kind = child.Word(0);
      if (kind == "prefix-list") {
        ConvertPrefixList(child);
      } else if (kind == "community") {
        ConvertCommunity(child);
      } else if (kind == "as-path") {
        // as-path NAME "regex";
        ir::AsPathList list;
        list.name = child.Word(1);
        list.span = Span(child);
        list.entries.push_back(
            {LineAction::kPermit, child.Word(2), Span(child)});
        config().as_path_lists[list.name] = std::move(list);
      } else if (kind != "policy-statement") {
        Diagnose(child, "unrecognized policy-options item: " + kind);
      }
    }
    for (const Node& child : options.children) {
      if (child.Word(0) == "policy-statement") ConvertPolicyStatement(child);
    }
  }

  void ConvertPrefixList(const Node& list_node) {
    ir::PrefixList list;
    list.name = list_node.Word(1);
    list.span = Span(list_node);
    // JunOS prefix-lists accept either family syntactically; the IR keeps
    // the families apart, so the first entry fixes the list's family and
    // entries of the other family are diagnosed.
    bool family_set = false;
    for (const Node& entry : list_node.children) {
      auto prefix = util::IpPrefix::Parse(entry.Word(0));
      if (!prefix) {
        Diagnose(entry, "bad prefix-list entry");
        continue;
      }
      if (!family_set) {
        list.family = prefix->family();
        family_set = true;
      } else if (prefix->family() != list.family) {
        Diagnose(entry, "prefix-list entry mixes address families");
        continue;
      }
      // JunOS prefix-lists match exactly (no length window) when used in a
      // `from prefix-list` condition.
      list.entries.push_back({LineAction::kPermit,
                              util::PrefixRange(*prefix), Span(entry)});
    }
    config().prefix_lists[list.name] = std::move(list);
  }

  void ConvertCommunity(const Node& community_node) {
    // community NAME members [ 10:10 10:11 ];  — all members must match.
    ir::CommunityList list;
    list.name = community_node.Word(1);
    list.span = Span(community_node);
    ir::CommunityListEntry entry;
    entry.action = LineAction::kPermit;
    entry.span = Span(community_node);
    std::size_t i = 2;
    if (community_node.Word(i) == "members") ++i;
    for (; i < community_node.words.size(); ++i) {
      auto community = util::Community::Parse(community_node.words[i]);
      if (!community) {
        Diagnose(community_node,
                 "unsupported community member: " + community_node.words[i]);
        continue;
      }
      entry.all_of.push_back(*community);
    }
    list.entries.push_back(std::move(entry));
    config().community_lists[list.name] = std::move(list);
  }

  void ConvertPolicyStatement(const Node& policy_node) {
    ir::RouteMap map;
    map.name = policy_node.Word(1);
    map.span = Span(policy_node);
    // JunOS BGP policies fall through to the protocol default, which for
    // the BGP contexts Campion checks is accept.
    map.default_action = ir::ClauseAction::kPermit;

    int sequence = 10;
    for (const Node& term : policy_node.children) {
      if (term.Word(0) == "term") {
        map.clauses.push_back(ConvertTerm(term, term.Word(1), sequence));
        sequence += 10;
      } else if (term.Word(0) == "from" || term.Word(0) == "then") {
        // An anonymous term at the policy level.
        Node wrapper;
        wrapper.is_block = true;
        wrapper.first_line = term.first_line;
        wrapper.last_line = term.last_line;
        wrapper.children.push_back(term);
        map.clauses.push_back(ConvertTerm(wrapper, "", sequence));
        sequence += 10;
      } else {
        Diagnose(term, "unrecognized policy-statement item");
      }
    }
    config().route_maps[map.name] = std::move(map);
  }

  ir::RouteMapClause ConvertTerm(const Node& term, const std::string& name,
                                 int sequence) {
    ir::RouteMapClause clause;
    clause.term_name = name;
    clause.sequence = sequence;
    clause.span = Span(term);
    clause.action = ir::ClauseAction::kFallThrough;  // Until accept/reject.

    if (const Node* from = term.Find("from")) {
      ConvertFrom(*from, clause);
    }
    const Node* then_node = term.Find("then");
    if (then_node != nullptr) {
      if (then_node->is_block) {
        for (const Node& action : then_node->children) {
          ApplyThen(action, clause);
        }
      } else {
        // "then accept;" inline form.
        Node inline_action;
        inline_action.words.assign(then_node->words.begin() + 1,
                                   then_node->words.end());
        inline_action.first_line = then_node->first_line;
        inline_action.last_line = then_node->last_line;
        ApplyThen(inline_action, clause);
      }
    }
    return clause;
  }

  void ConvertFrom(const Node& from, ir::RouteMapClause& clause) {
    // Prefix conditions (prefix-list and route-filter) OR together; other
    // condition kinds AND with them.
    ir::RouteMapMatch prefix_match;
    prefix_match.kind = ir::RouteMapMatch::Kind::kPrefixList;
    prefix_match.span = Span(from);

    auto handle = [&](const Node& condition) {
      const std::string& kind = condition.Word(0);
      if (kind == "prefix-list") {
        prefix_match.names.push_back(condition.Word(1));
      } else if (kind == "prefix-list-filter") {
        // prefix-list-filter NAME exact|orlonger|longer: the named list's
        // prefixes with the mode's length window applied to each entry.
        prefix_match.names.push_back(ConvertPrefixListFilter(condition));
      } else if (kind == "route-filter") {
        prefix_match.names.push_back(ConvertRouteFilter(condition));
      } else if (kind == "community") {
        ir::RouteMapMatch match;
        match.kind = ir::RouteMapMatch::Kind::kCommunityList;
        match.span = Span(condition);
        for (std::size_t i = 1; i < condition.words.size(); ++i) {
          match.names.push_back(condition.words[i]);
        }
        clause.matches.push_back(std::move(match));
      } else if (kind == "as-path") {
        ir::RouteMapMatch match;
        match.kind = ir::RouteMapMatch::Kind::kAsPathList;
        match.span = Span(condition);
        for (std::size_t i = 1; i < condition.words.size(); ++i) {
          match.names.push_back(condition.words[i]);
        }
        clause.matches.push_back(std::move(match));
      } else if (kind == "protocol") {
        ir::RouteMapMatch match;
        match.kind = ir::RouteMapMatch::Kind::kProtocol;
        match.span = Span(condition);
        const std::string& protocol = condition.Word(1);
        if (protocol == "static") {
          match.protocol = Protocol::kStatic;
        } else if (protocol == "direct") {
          match.protocol = Protocol::kConnected;
        } else if (protocol == "ospf") {
          match.protocol = Protocol::kOspf;
        } else if (protocol == "bgp") {
          match.protocol = Protocol::kBgp;
        } else {
          Diagnose(condition, "unsupported protocol: " + protocol);
          return;
        }
        clause.matches.push_back(std::move(match));
      } else if (kind == "tag") {
        ir::RouteMapMatch match;
        match.kind = ir::RouteMapMatch::Kind::kTag;
        match.span = Span(condition);
        if (auto tag = ParseNumber(condition.Word(1))) match.value = *tag;
        clause.matches.push_back(std::move(match));
      } else if (kind == "metric") {
        ir::RouteMapMatch match;
        match.kind = ir::RouteMapMatch::Kind::kMetric;
        match.span = Span(condition);
        if (auto metric = ParseNumber(condition.Word(1))) {
          match.value = *metric;
        }
        clause.matches.push_back(std::move(match));
      } else {
        Diagnose(condition, "unsupported from condition: " + kind);
      }
    };
    if (from.is_block) {
      for (const Node& condition : from.children) handle(condition);
    } else {
      Node inline_condition;
      inline_condition.words.assign(from.words.begin() + 1, from.words.end());
      inline_condition.first_line = from.first_line;
      inline_condition.last_line = from.last_line;
      handle(inline_condition);
    }
    if (!prefix_match.names.empty()) {
      clause.matches.push_back(std::move(prefix_match));
    }
  }

  // Lowers a prefix-list-filter condition to an anonymous prefix list whose
  // entries carry the filter mode's length windows. Returns its name.
  std::string ConvertPrefixListFilter(const Node& condition) {
    std::string name =
        "__prefix-list-filter-" + std::to_string(route_filter_count_++);
    ir::PrefixList lowered;
    lowered.name = name;
    lowered.span = Span(condition);
    const ir::PrefixList* source = config().FindPrefixList(condition.Word(1));
    if (source == nullptr) {
      Diagnose(condition,
               "prefix-list-filter references undefined list: " +
                   condition.Word(1));
      config().prefix_lists[name] = std::move(lowered);
      return name;
    }
    lowered.family = source->family;
    const int max_len = util::MaxPrefixLength(source->family);
    const std::string& mode = condition.Word(2);
    for (const auto& entry : source->entries) {
      int base = entry.range.prefix().length();
      int low = base;
      int high = base;
      if (mode == "orlonger") {
        high = max_len;
      } else if (mode == "longer") {
        low = base + 1;
        high = max_len;
      } else if (mode != "exact" && !mode.empty()) {
        Diagnose(condition, "unsupported prefix-list-filter mode: " + mode);
      }
      lowered.entries.push_back(
          {entry.action, util::PrefixRange(entry.range.prefix(), low, high),
           Span(condition)});
    }
    config().prefix_lists[name] = std::move(lowered);
    return name;
  }

  // Lowers a route-filter condition to an anonymous prefix list and returns
  // its name. (Multiple route-filters in one term OR together here; JunOS's
  // longest-match tie-breaking between them is not modeled — see DESIGN.md.)
  std::string ConvertRouteFilter(const Node& condition) {
    std::string name =
        "__route-filter-" + std::to_string(route_filter_count_++);
    ir::PrefixList list;
    list.name = name;
    list.span = Span(condition);
    auto prefix = util::IpPrefix::Parse(condition.Word(1));
    if (!prefix) {
      Diagnose(condition, "bad route-filter prefix");
      config().prefix_lists[name] = std::move(list);
      return name;
    }
    list.family = prefix->family();
    const int max_len = util::MaxPrefixLength(prefix->family());
    const std::string& mode = condition.Word(2);
    int low = prefix->length();
    int high = prefix->length();
    if (mode == "exact" || mode.empty()) {
      // Exact: [len, len].
    } else if (mode == "orlonger") {
      high = max_len;
    } else if (mode == "longer") {
      low = prefix->length() + 1;
      high = max_len;
    } else if (mode == "upto") {
      // upto /N
      const std::string& bound = condition.Word(3);
      if (auto n = ParseNumber(bound.starts_with("/") ? bound.substr(1)
                                                      : bound)) {
        high = static_cast<int>(*n);
      }
    } else if (mode == "prefix-length-range") {
      // prefix-length-range /A-/B
      std::string range = condition.Word(3);
      auto dash = range.find('-');
      if (dash != std::string::npos) {
        std::string a = range.substr(0, dash);
        std::string b = range.substr(dash + 1);
        if (a.starts_with("/")) a = a.substr(1);
        if (b.starts_with("/")) b = b.substr(1);
        if (auto low_n = ParseNumber(a)) low = static_cast<int>(*low_n);
        if (auto high_n = ParseNumber(b)) high = static_cast<int>(*high_n);
      }
    } else {
      Diagnose(condition, "unsupported route-filter mode: " + mode);
    }
    list.entries.push_back({LineAction::kPermit,
                            util::PrefixRange(*prefix, low, high),
                            Span(condition)});
    config().prefix_lists[name] = std::move(list);
    return name;
  }

  void ApplyThen(const Node& action, ir::RouteMapClause& clause) {
    const std::string& kind = action.Word(0);
    if (kind == "accept") {
      clause.action = ir::ClauseAction::kPermit;
    } else if (kind == "reject") {
      clause.action = ir::ClauseAction::kDeny;
    } else if (kind == "next" && action.Word(1) == "term") {
      clause.action = ir::ClauseAction::kFallThrough;
    } else if (kind == "local-preference") {
      ir::RouteMapSet set;
      set.kind = ir::RouteMapSet::Kind::kLocalPreference;
      set.span = Span(action);
      if (auto value = ParseNumber(action.Word(1))) set.value = *value;
      clause.sets.push_back(std::move(set));
    } else if (kind == "metric") {
      ir::RouteMapSet set;
      set.kind = ir::RouteMapSet::Kind::kMetric;
      set.span = Span(action);
      if (auto value = ParseNumber(action.Word(1))) set.value = *value;
      clause.sets.push_back(std::move(set));
    } else if (kind == "tag") {
      ir::RouteMapSet set;
      set.kind = ir::RouteMapSet::Kind::kTag;
      set.span = Span(action);
      if (auto value = ParseNumber(action.Word(1))) set.value = *value;
      clause.sets.push_back(std::move(set));
    } else if (kind == "next-hop") {
      ir::RouteMapSet set;
      set.span = Span(action);
      if (action.Word(1) == "self") {
        set.kind = ir::RouteMapSet::Kind::kNextHopSelf;
        clause.sets.push_back(std::move(set));
      } else if (auto ip = Ipv4Address::Parse(action.Word(1))) {
        set.kind = ir::RouteMapSet::Kind::kNextHop;
        set.next_hop = *ip;
        clause.sets.push_back(std::move(set));
      } else {
        Diagnose(action, "unsupported next-hop: " + action.Word(1));
      }
    } else if (kind == "community") {
      // community add|set|delete NAME — the named community's members.
      ir::RouteMapSet set;
      set.span = Span(action);
      const std::string& operation = action.Word(1);
      if (operation == "add") {
        set.kind = ir::RouteMapSet::Kind::kCommunityAdd;
      } else if (operation == "set") {
        set.kind = ir::RouteMapSet::Kind::kCommunitySet;
      } else if (operation == "delete") {
        set.kind = ir::RouteMapSet::Kind::kCommunityDelete;
      } else {
        Diagnose(action, "unsupported community operation: " + operation);
        return;
      }
      const std::string& list_name = action.Word(2);
      if (const ir::CommunityList* list =
              config().FindCommunityList(list_name)) {
        for (const auto& entry : list->entries) {
          set.communities.insert(set.communities.end(), entry.all_of.begin(),
                                 entry.all_of.end());
        }
      } else if (auto community = util::Community::Parse(list_name)) {
        set.communities.push_back(*community);
      } else {
        Diagnose(action, "unknown community: " + list_name);
      }
      clause.sets.push_back(std::move(set));
    } else {
      Diagnose(action, "unsupported then action: " + kind);
    }
  }

  // --- firewall ---------------------------------------------------------------------

  void ConvertFirewall(const Node& firewall) {
    for (const Node& child : firewall.children) {
      if (child.Word(0) == "family") {
        util::AddressFamily family = util::AddressFamily::kIpv4;
        if (child.Word(1) == "inet6") {
          family = util::AddressFamily::kIpv6;
        } else if (child.Word(1) != "inet") {
          Diagnose(child, "unsupported firewall family: " + child.Word(1));
          continue;
        }
        for (const Node& filter : child.children) {
          if (filter.Word(0) != "filter") continue;
          ConvertFilter(filter, family);
        }
      } else if (child.Word(0) == "filter") {
        // A filter directly under `firewall` is family inet.
        ConvertFilter(child, util::AddressFamily::kIpv4);
      }
    }
  }

  void ConvertFilter(const Node& filter_node, util::AddressFamily family) {
    ir::Acl acl;
    acl.name = filter_node.Word(1);
    acl.family = family;
    acl.span = Span(filter_node);
    for (const Node& term : filter_node.children) {
      if (term.Word(0) != "term") continue;
      ConvertFilterTerm(term, acl);
    }
    config().acls[acl.name] = std::move(acl);
  }

  void ConvertFilterTerm(const Node& term, ir::Acl& acl) {
    const util::AddressFamily family = acl.family;
    std::vector<IpWildcard> sources;
    std::vector<IpWildcard> destinations;
    std::vector<std::optional<std::uint8_t>> protocols;
    std::vector<ir::PortRange> src_ports;
    std::vector<ir::PortRange> dst_ports;
    std::optional<std::uint8_t> icmp_type;
    bool established = false;
    LineAction action = LineAction::kPermit;
    bool has_action = false;

    // source-address/destination-address operands are prefix-shaped in both
    // families ("10.0.0.0/8", "2001:db8::/32").
    auto parse_address = [&](const Node& condition,
                             std::vector<IpWildcard>& out, const char* what) {
      if (family == util::AddressFamily::kIpv6) {
        if (auto prefix = util::Prefix6::Parse(condition.Word(1))) {
          out.push_back(IpWildcard(*prefix));
        } else {
          Diagnose(condition, std::string("bad ") + what);
        }
      } else if (auto prefix = Prefix::Parse(condition.Word(1))) {
        out.push_back(IpWildcard(*prefix));
      } else {
        Diagnose(condition, std::string("bad ") + what);
      }
    };

    auto parse_ports = [&](const Node& condition,
                           std::vector<ir::PortRange>& ports) {
      for (std::size_t i = 1; i < condition.words.size(); ++i) {
        const std::string& word = condition.words[i];
        auto dash = word.find('-');
        if (dash != std::string::npos) {
          auto low = ParseNumber(word.substr(0, dash));
          auto high = ParseNumber(word.substr(dash + 1));
          if (low && high) {
            ports.push_back({static_cast<std::uint16_t>(*low),
                             static_cast<std::uint16_t>(*high)});
          }
        } else if (auto port = ParseNumber(word)) {
          ports.push_back({static_cast<std::uint16_t>(*port),
                           static_cast<std::uint16_t>(*port)});
        }
      }
    };

    if (const Node* from = term.Find("from")) {
      for (const Node& condition : from->children) {
        const std::string& kind = condition.Word(0);
        if (kind == "source-address") {
          parse_address(condition, sources, "source-address");
        } else if (kind == "destination-address") {
          parse_address(condition, destinations, "destination-address");
        } else if (kind == "protocol" || kind == "next-header") {
          for (std::size_t i = 1; i < condition.words.size(); ++i) {
            if (auto protocol = ParseIpProtocol(condition.words[i])) {
              protocols.push_back(protocol);
            } else {
              Diagnose(condition,
                       "unsupported protocol: " + condition.words[i]);
            }
          }
        } else if (kind == "source-port") {
          parse_ports(condition, src_ports);
        } else if (kind == "destination-port" || kind == "port") {
          parse_ports(condition, dst_ports);
        } else if (kind == "tcp-established") {
          // Matches established TCP flows.
          // (protocol tcp is usually also present in the term.)
          established = true;
        } else if (kind == "icmp-type" || kind == "icmpv6-type") {
          const bool v6 = family == util::AddressFamily::kIpv6;
          if (auto type = ParseNumber(condition.Word(1))) {
            icmp_type = static_cast<std::uint8_t>(*type);
          } else if (condition.Word(1) == "echo-request") {
            icmp_type = v6 ? 128 : 8;
          } else if (condition.Word(1) == "echo-reply") {
            icmp_type = v6 ? 129 : 0;
          }
        } else {
          Diagnose(condition, "unsupported filter condition: " + kind);
        }
      }
    }
    const Node* then_node = term.Find("then");
    if (then_node != nullptr) {
      auto apply = [&](const std::string& word) {
        if (word == "accept") {
          action = LineAction::kPermit;
          has_action = true;
        } else if (word == "discard" || word == "reject") {
          action = LineAction::kDeny;
          has_action = true;
        }
      };
      if (then_node->is_block) {
        for (const Node& item : then_node->children) apply(item.Word(0));
      } else if (then_node->words.size() >= 2) {
        apply(then_node->Word(1));
      }
    }
    if (!has_action) {
      // A firewall term without a terminating action accepts by default
      // when it matches (count/log-only terms are rare in our subset).
      action = LineAction::kPermit;
    }

    if (sources.empty()) sources.push_back(IpWildcard::AnyOf(family));
    if (destinations.empty()) {
      destinations.push_back(IpWildcard::AnyOf(family));
    }
    if (protocols.empty()) protocols.push_back(std::nullopt);

    // One IR line per (source, destination, protocol) combination; ORs
    // within an attribute become multiple lines with the same action.
    for (const auto& src : sources) {
      for (const auto& dst : destinations) {
        for (const auto& protocol : protocols) {
          ir::AclLine line;
          line.action = action;
          line.protocol = protocol;
          line.src = src;
          line.dst = dst;
          line.src_ports = src_ports;
          line.dst_ports = dst_ports;
          line.icmp_type = icmp_type;
          line.established = established;
          line.span = Span(term);
          acl.lines.push_back(std::move(line));
        }
      }
    }
  }

  // --- protocols/ospf ------------------------------------------------------------------

  void ConvertOspf(const Node& ospf) {
    config().ospf.emplace();
    config().ospf->span = Span(ospf);
    if (const Node* reference = ospf.Find("reference-bandwidth")) {
      std::string value = reference->Word(1);
      std::uint32_t multiplier = 1;
      if (!value.empty() && (value.back() == 'g' || value.back() == 'G')) {
        multiplier = 1000;
        value.pop_back();
      } else if (!value.empty() &&
                 (value.back() == 'm' || value.back() == 'M')) {
        value.pop_back();
      }
      if (auto bw = ParseNumber(value)) {
        config().ospf->reference_bandwidth_mbps = *bw * multiplier;
      }
    }
    if (const Node* export_policy = ospf.Find("export")) {
      // OSPF export policy implements route redistribution in JunOS. The
      // redistributed protocols are in the policy's match conditions; we
      // record a redistribution entry per protocol the policy matches, or
      // a generic static redistribution when unknown.
      const std::string& policy_name = export_policy->Word(1);
      ir::Redistribution redist;
      redist.route_map = policy_name;
      redist.span = Span(*export_policy);
      std::vector<Protocol> from = RedistributedProtocols(policy_name);
      if (from.empty()) from.push_back(Protocol::kStatic);
      for (Protocol protocol : from) {
        redist.from = protocol;
        config().ospf->redistributions.push_back(redist);
      }
    }
    for (const Node& area : ospf.children) {
      if (area.Word(0) != "area") continue;
      auto area_id = ParseArea(area.Word(1));
      for (const Node& iface_node : area.children) {
        if (iface_node.Word(0) != "interface") continue;
        const std::string& name = iface_node.Word(1);
        ir::Interface* iface = nullptr;
        for (auto& candidate : config().interfaces) {
          if (candidate.name == name) {
            iface = &candidate;
            break;
          }
        }
        if (iface == nullptr) {
          // OSPF on an interface not declared under `interfaces`.
          config().interfaces.push_back({});
          iface = &config().interfaces.back();
          iface->name = name;
          iface->span = Span(iface_node);
        }
        iface->ospf_enabled = true;
        iface->ospf_area = area_id;
        if (iface_node.is_block) {
          if (const Node* metric = iface_node.Find("metric")) {
            if (auto cost = ParseNumber(metric->Word(1))) {
              iface->ospf_cost = *cost;
            }
          }
          if (iface_node.Find("passive") != nullptr) {
            iface->ospf_passive = true;
          }
        }
      }
    }
  }

  // The protocols matched by `from protocol ...` conditions of a policy —
  // used to map a JunOS OSPF export policy onto redistribution entries.
  std::vector<Protocol> RedistributedProtocols(const std::string& policy) {
    std::vector<Protocol> protocols;
    const ir::RouteMap* map = config().FindRouteMap(policy);
    if (map == nullptr) return protocols;
    for (const auto& clause : map->clauses) {
      for (const auto& match : clause.matches) {
        if (match.kind == ir::RouteMapMatch::Kind::kProtocol) {
          if (std::find(protocols.begin(), protocols.end(),
                        match.protocol) == protocols.end()) {
            protocols.push_back(match.protocol);
          }
        }
      }
    }
    return protocols;
  }

  // --- protocols/bgp --------------------------------------------------------------------

  void ConvertBgp(const Node& bgp) {
    config().bgp.emplace();
    config().bgp->span = Span(bgp);
    config().bgp->asn = local_as_;
    config().bgp->router_id = router_id_;
    for (const Node& network : bgp.children) {
      // Dialect extension mirroring Cisco `network` statements (see
      // DESIGN.md and the unparser).
      if (network.Word(0) != "network") continue;
      if (auto prefix = Prefix::Parse(network.Word(1))) {
        config().bgp->networks.push_back(*prefix);
      } else {
        Diagnose(network, "bad bgp network");
      }
    }
    for (const Node& group : bgp.children) {
      if (group.Word(0) != "group") continue;
      bool internal = false;
      if (const Node* type = group.Find("type")) {
        internal = type->Word(1) == "internal";
      }
      std::uint32_t group_peer_as = internal ? local_as_ : 0;
      if (const Node* peer_as = group.Find("peer-as")) {
        if (auto asn = ParseNumber(peer_as->Word(1))) group_peer_as = *asn;
      }
      std::string group_import, group_export;
      if (const Node* import_node = group.Find("import")) {
        group_import = import_node->Word(1);
      }
      if (const Node* export_node = group.Find("export")) {
        group_export = export_node->Word(1);
      }
      bool cluster = group.Find("cluster") != nullptr;

      for (const Node& neighbor_node : group.children) {
        if (neighbor_node.Word(0) != "neighbor") continue;
        auto ip = Ipv4Address::Parse(neighbor_node.Word(1));
        if (!ip) {
          Diagnose(neighbor_node, "bad neighbor address");
          continue;
        }
        ir::BgpNeighbor neighbor;
        neighbor.ip = *ip;
        neighbor.remote_as = group_peer_as;
        neighbor.import_policy = group_import;
        neighbor.export_policy = group_export;
        neighbor.route_reflector_client = cluster;
        // JunOS propagates communities to all BGP neighbors by default.
        neighbor.send_community = true;
        neighbor.span = Span(neighbor_node);
        if (neighbor_node.is_block) {
          if (const Node* peer_as = neighbor_node.Find("peer-as")) {
            if (auto asn = ParseNumber(peer_as->Word(1))) {
              neighbor.remote_as = *asn;
            }
          }
          if (const Node* import_node = neighbor_node.Find("import")) {
            neighbor.import_policy = import_node->Word(1);
          }
          if (const Node* export_node = neighbor_node.Find("export")) {
            neighbor.export_policy = export_node->Word(1);
          }
          if (const Node* description = neighbor_node.Find("description")) {
            neighbor.description = description->Word(1);
          }
        }
        config().bgp->neighbors.push_back(std::move(neighbor));
      }
    }
  }

  std::string filename_;
  std::vector<std::string> lines_;
  std::uint32_t local_as_ = 0;
  std::optional<Ipv4Address> router_id_;
  int route_filter_count_ = 0;
  ParseResult result_;
};

}  // namespace

ParseResult ParseJuniperConfig(const std::string& text,
                               const std::string& filename) {
  std::vector<std::string> diagnostics;
  std::vector<Token> tokens = Tokenize(text, &diagnostics, filename);
  TreeBuilder builder(std::move(tokens), &diagnostics, filename);
  Node root = builder.Build();
  Converter converter(text, filename);
  ParseResult result = converter.Run(root);
  result.diagnostics.insert(result.diagnostics.begin(), diagnostics.begin(),
                            diagnostics.end());
  return result;
}

ParseResult ParseJuniperFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseJuniperConfig(buffer.str(), path);
}

}  // namespace campion::juniper
