#pragma once

// Emits canonical JunOS configuration text from the vendor-independent IR.
// Counterpart of cisco_unparser; used by the workload generator and the
// round-trip tests.
//
// Precondition: prefix lists referenced by route maps must be permit-only.
// JunOS prefix-lists and route-filters carry no per-entry action, so a
// Cisco-style deny entry has no native JunOS equivalent; emitting such a
// list would silently change behavior, which the route-map emitter refuses
// to do (it flags the list in a comment instead).

#include <string>

#include "ir/config.h"

namespace campion::juniper {

std::string UnparseJuniperConfig(const ir::RouterConfig& config);

std::string UnparsePrefixList(const ir::PrefixList& list);
std::string UnparseCommunity(const ir::CommunityList& list);
std::string UnparsePolicyStatement(const ir::RouteMap& map);
std::string UnparseFilter(const ir::Acl& acl);

}  // namespace campion::juniper
