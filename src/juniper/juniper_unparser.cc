#include "juniper/juniper_unparser.h"

#include <map>

namespace campion::juniper {
namespace {

// Renders one prefix-list entry as a route-filter condition line.
std::string RouteFilterLine(const util::PrefixRange& range,
                            const std::string& indent) {
  int base = range.prefix().length();
  const int max_len = util::MaxPrefixLength(range.family());
  std::string out = indent + "route-filter " + range.prefix().ToString();
  if (range.low() == base && range.high() == base) {
    out += " exact";
  } else if (range.low() == base && range.high() == max_len) {
    out += " orlonger";
  } else if (range.low() == base + 1 && range.high() == max_len) {
    out += " longer";
  } else if (range.low() == base) {
    out += " upto /" + std::to_string(range.high());
  } else {
    out += " prefix-length-range /" + std::to_string(range.low()) + "-/" +
           std::to_string(range.high());
  }
  return out + ";\n";
}

// A discontiguous wildcard (don't-care bits that are not a contiguous low
// suffix) has no single JunOS prefix equivalent, but it is exactly the
// union of 2^k prefixes over its k non-suffix free bits, and repeated
// source-address / destination-address entries within a term OR together
// (the parser turns them back into one IR line per prefix with the same
// action). Returns the expansion, or empty when it would exceed `cap`
// prefixes.
std::vector<util::Prefix> ExpandWildcard(const util::IpWildcard& w,
                                         std::size_t cap) {
  std::uint32_t mask = w.wildcard_bits();
  int suffix = 0;
  while (suffix < 32 && ((mask >> suffix) & 1u) != 0) ++suffix;
  std::vector<int> free_bits;
  for (int bit = suffix; bit < 32; ++bit) {
    if (((mask >> bit) & 1u) != 0) free_bits.push_back(bit);
  }
  if (free_bits.size() >= 20 ||
      (std::size_t{1} << free_bits.size()) > cap) {
    return {};
  }
  std::vector<util::Prefix> out;
  out.reserve(std::size_t{1} << free_bits.size());
  for (std::size_t combo = 0; combo < (std::size_t{1} << free_bits.size());
       ++combo) {
    std::uint32_t bits = w.address().bits();
    for (std::size_t i = 0; i < free_bits.size(); ++i) {
      if (((combo >> i) & 1u) != 0) bits |= 1u << free_bits[i];
    }
    out.emplace_back(util::Ipv4Address(bits), 32 - suffix);
  }
  return out;
}

bool IsExactPermitList(const ir::PrefixList& list) {
  for (const auto& entry : list.entries) {
    if (entry.action != ir::LineAction::kPermit) return false;
    if (entry.range.low() != entry.range.prefix().length() ||
        entry.range.high() != entry.range.prefix().length()) {
      return false;
    }
  }
  return true;
}

std::string UnparseTerm(const ir::RouteMapClause& clause,
                        const ir::RouterConfig* config, int index) {
  std::string name = clause.term_name.empty()
                         ? "t" + std::to_string(index)
                         : clause.term_name;
  std::string out = "        term " + name + " {\n";
  if (!clause.matches.empty()) {
    out += "            from {\n";
    for (const auto& match : clause.matches) {
      switch (match.kind) {
        case ir::RouteMapMatch::Kind::kPrefixList:
          for (const auto& list_name : match.names) {
            const ir::PrefixList* list =
                config != nullptr ? config->FindPrefixList(list_name)
                                  : nullptr;
            if (list != nullptr && !IsExactPermitList(*list)) {
              // Windowed entries: inline as route-filters. Deny entries
              // have no JunOS equivalent (see header); refuse silently
              // changing behavior and leave a marker instead.
              for (const auto& entry : list->entries) {
                if (entry.action == ir::LineAction::kDeny) {
                  out += "                /* unrepresentable deny entry of " +
                         list_name + ": " + entry.range.ToString() + " */\n";
                  continue;
                }
                out += RouteFilterLine(entry.range, "                ");
              }
            } else {
              out += "                prefix-list " + list_name + ";\n";
            }
          }
          break;
        case ir::RouteMapMatch::Kind::kCommunityList:
          for (const auto& list_name : match.names) {
            const ir::CommunityList* list =
                config != nullptr ? config->FindCommunityList(list_name)
                                  : nullptr;
            if (list != nullptr && list->entries.size() > 1) {
              // A multi-entry (OR) list maps to the per-entry community
              // names UnparseCommunity emits, OR'd with bracket syntax.
              out += "                community [";
              for (std::size_t i = 0; i < list->entries.size(); ++i) {
                out += " " + list_name + "__" + std::to_string(i);
              }
              out += " ];\n";
            } else {
              out += "                community " + list_name + ";\n";
            }
          }
          break;
        case ir::RouteMapMatch::Kind::kAsPathList:
          for (const auto& list_name : match.names) {
            out += "                as-path " + list_name + ";\n";
          }
          break;
        case ir::RouteMapMatch::Kind::kTag:
          out += "                tag " + std::to_string(match.value) + ";\n";
          break;
        case ir::RouteMapMatch::Kind::kMetric:
          out += "                metric " + std::to_string(match.value) +
                 ";\n";
          break;
        case ir::RouteMapMatch::Kind::kProtocol: {
          std::string protocol = ir::ToString(match.protocol);
          if (match.protocol == ir::Protocol::kConnected) protocol = "direct";
          out += "                protocol " + protocol + ";\n";
          break;
        }
      }
    }
    out += "            }\n";
  }
  out += "            then {\n";
  for (const auto& set : clause.sets) {
    switch (set.kind) {
      case ir::RouteMapSet::Kind::kLocalPreference:
        out += "                local-preference " +
               std::to_string(set.value) + ";\n";
        break;
      case ir::RouteMapSet::Kind::kMetric:
        out += "                metric " + std::to_string(set.value) + ";\n";
        break;
      case ir::RouteMapSet::Kind::kTag:
        out += "                tag " + std::to_string(set.value) + ";\n";
        break;
      case ir::RouteMapSet::Kind::kNextHop:
        out += "                next-hop " + set.next_hop.ToString() + ";\n";
        break;
      case ir::RouteMapSet::Kind::kNextHopSelf:
        out += "                next-hop self;\n";
        break;
      case ir::RouteMapSet::Kind::kCommunitySet:
      case ir::RouteMapSet::Kind::kCommunityAdd:
      case ir::RouteMapSet::Kind::kCommunityDelete: {
        const char* operation =
            set.kind == ir::RouteMapSet::Kind::kCommunitySet ? "set"
            : set.kind == ir::RouteMapSet::Kind::kCommunityAdd ? "add"
                                                                : "delete";
        // Communities are set by named group; emit one single-member
        // reference per community (the member itself parses as a name).
        for (const auto& community : set.communities) {
          out += std::string("                community ") + operation + " " +
                 community.ToString() + ";\n";
        }
        break;
      }
    }
  }
  switch (clause.action) {
    case ir::ClauseAction::kPermit: out += "                accept;\n"; break;
    case ir::ClauseAction::kDeny: out += "                reject;\n"; break;
    case ir::ClauseAction::kFallThrough:
      out += "                next term;\n";
      break;
  }
  out += "            }\n        }\n";
  return out;
}

}  // namespace

std::string UnparsePrefixList(const ir::PrefixList& list) {
  std::string out = "    prefix-list " + list.name + " {\n";
  for (const auto& entry : list.entries) {
    out += "        " + entry.range.prefix().ToString() + ";\n";
  }
  return out + "    }\n";
}

std::string UnparseCommunity(const ir::CommunityList& list) {
  std::string out;
  int index = 0;
  for (const auto& entry : list.entries) {
    std::string name =
        list.entries.size() == 1 ? list.name
                                 : list.name + "__" + std::to_string(index++);
    out += "    community " + name + " members [";
    for (const auto& community : entry.all_of) {
      out += " " + community.ToString();
    }
    out += " ];\n";
  }
  return out;
}

// JunOS policies fall through to the protocol default (accept in the BGP
// contexts Campion checks); an IR default-deny therefore needs an explicit
// final reject term to survive the round trip.
std::string DefaultActionTerm(const ir::RouteMap& map) {
  if (map.default_action != ir::ClauseAction::kDeny) return "";
  return "        term __implicit-deny__ {\n"
         "            then {\n"
         "                reject;\n"
         "            }\n"
         "        }\n";
}

std::string UnparsePolicyStatement(const ir::RouteMap& map) {
  std::string out = "    policy-statement " + map.name + " {\n";
  int index = 0;
  for (const auto& clause : map.clauses) {
    out += UnparseTerm(clause, nullptr, index++);
  }
  out += DefaultActionTerm(map);
  return out + "    }\n";
}

std::string UnparseFilter(const ir::Acl& acl) {
  std::string out = "        filter " + acl.name + " {\n";
  int index = 0;
  for (const auto& line : acl.lines) {
    out += "            term t" + std::to_string(index++) + " {\n";
    out += "                from {\n";
    // Dropping an unrepresentable address match would silently widen the
    // term to match-any; expand discontiguous wildcards into an OR of
    // prefixes instead, and leave a visible marker (like the deny-entry
    // case above) when the expansion is too large.
    auto address_match = [&out](const char* keyword,
                                const util::IpWildcard& w) {
      if (w.IsAny()) return;
      if (auto prefix = w.AsIpPrefix()) {
        out += std::string("                    ") + keyword + " " +
               prefix->ToString() + ";\n";
        return;
      }
      if (w.family() != util::AddressFamily::kIpv4) {
        // The 2^k-prefix expansion below is 32-bit; discontiguous 128-bit
        // wildcards (which no frontend produces) only get the marker.
        out += std::string("                    /* unrepresentable "
                           "wildcard ") +
               keyword + " " + w.ToString() + " */\n";
        return;
      }
      std::vector<util::Prefix> prefixes = ExpandWildcard(w, 256);
      if (prefixes.empty()) {
        out += std::string("                    /* unrepresentable "
                           "wildcard ") +
               keyword + " " + w.ToString() + " */\n";
        return;
      }
      for (const auto& prefix : prefixes) {
        out += std::string("                    ") + keyword + " " +
               prefix.ToString() + ";\n";
      }
    };
    address_match("source-address", line.src);
    address_match("destination-address", line.dst);
    if (line.protocol) {
      out += "                    protocol " +
             ir::ProtocolNumberToString(*line.protocol) + ";\n";
    }
    auto ports = [&](const char* keyword,
                     const std::vector<ir::PortRange>& ranges) {
      if (ranges.empty()) return;
      out += std::string("                    ") + keyword;
      for (const auto& r : ranges) {
        out += " " + (r.low == r.high
                          ? std::to_string(r.low)
                          : std::to_string(r.low) + "-" +
                                std::to_string(r.high));
      }
      out += ";\n";
    };
    ports("source-port", line.src_ports);
    ports("destination-port", line.dst_ports);
    if (line.icmp_type) {
      out += "                    icmp-type " +
             std::to_string(*line.icmp_type) + ";\n";
    }
    if (line.established) {
      out += "                    tcp-established;\n";
    }
    out += "                }\n";
    out += std::string("                then ") +
           (line.action == ir::LineAction::kPermit ? "accept" : "discard") +
           ";\n";
    out += "            }\n";
  }
  return out + "        }\n";
}

std::string UnparseJuniperConfig(const ir::RouterConfig& config) {
  std::string out;
  out += "system {\n    host-name " +
         (config.hostname.empty() ? "router" : config.hostname) + ";\n}\n";

  if (!config.interfaces.empty()) {
    out += "interfaces {\n";
    // Group units under their physical interface.
    std::map<std::string, std::vector<const ir::Interface*>> physical;
    for (const auto& iface : config.interfaces) {
      auto dot = iface.name.find('.');
      physical[iface.name.substr(0, dot)].push_back(&iface);
    }
    for (const auto& [base, units] : physical) {
      out += "    " + base + " {\n";
      for (const ir::Interface* iface : units) {
        auto dot = iface->name.find('.');
        std::string unit =
            dot == std::string::npos ? "0" : iface->name.substr(dot + 1);
        out += "        unit " + unit + " {\n";
        if (iface->shutdown) out += "            disable;\n";
        if (iface->address) {
          out += "            family inet {\n                address " +
                 iface->address->ToString() + "/" +
                 std::to_string(iface->prefix_length) +
                 ";\n            }\n";
        }
        out += "        }\n";
      }
      out += "    }\n";
    }
    out += "}\n";
  }

  bool has_routing_options = !config.static_routes.empty() ||
                             (config.bgp && config.bgp->asn != 0);
  if (has_routing_options) {
    out += "routing-options {\n";
    if (config.bgp && config.bgp->router_id) {
      out += "    router-id " + config.bgp->router_id->ToString() + ";\n";
    }
    if (config.bgp && config.bgp->asn != 0) {
      out += "    autonomous-system " + std::to_string(config.bgp->asn) +
             ";\n";
    }
    if (!config.static_routes.empty()) {
      out += "    static {\n";
      for (const auto& route : config.static_routes) {
        out += "        route " + route.prefix.ToString() + " {\n";
        if (route.next_hop) {
          out += "            next-hop " + route.next_hop->ToString() + ";\n";
        } else if (!route.next_hop_interface.empty()) {
          out += "            next-hop " + route.next_hop_interface + ";\n";
        }
        if (route.admin_distance != 5) {
          out += "            preference " +
                 std::to_string(route.admin_distance) + ";\n";
        }
        if (route.tag) {
          out += "            tag " + std::to_string(*route.tag) + ";\n";
        }
        out += "        }\n";
      }
      out += "    }\n";
    }
    out += "}\n";
  }

  if (!config.prefix_lists.empty() || !config.community_lists.empty() ||
      !config.route_maps.empty()) {
    out += "policy-options {\n";
    for (const auto& [name, list] : config.prefix_lists) {
      // Anonymous route-filter lists are re-inlined by the policy below.
      if (name.starts_with("__route-filter-")) continue;
      if (IsExactPermitList(list)) {
        out += UnparsePrefixList(list);
      }
    }
    for (const auto& [name, list] : config.community_lists) {
      out += UnparseCommunity(list);
    }
    for (const auto& [name, list] : config.as_path_lists) {
      // JunOS as-path holds a single regex; multi-entry lists emit one
      // as-path-group-style name per entry, OR'd at the use site.
      if (list.entries.size() == 1) {
        out += "    as-path " + list.name + " \"" + list.entries[0].regex +
               "\";\n";
      } else {
        int index = 0;
        for (const auto& entry : list.entries) {
          out += "    as-path " + list.name + "__" + std::to_string(index++) +
                 " \"" + entry.regex + "\";\n";
        }
      }
    }
    for (const auto& [name, map] : config.route_maps) {
      out += "    policy-statement " + map.name + " {\n";
      int index = 0;
      for (const auto& clause : map.clauses) {
        out += UnparseTerm(clause, &config, index++);
      }
      out += DefaultActionTerm(map);
      out += "    }\n";
    }
    out += "}\n";
  }

  if (!config.acls.empty()) {
    out += "firewall {\n";
    for (util::AddressFamily family :
         {util::AddressFamily::kIpv4, util::AddressFamily::kIpv6}) {
      bool any = false;
      for (const auto& [name, acl] : config.acls) {
        if (acl.family != family) continue;
        if (!any) {
          out += family == util::AddressFamily::kIpv4
                     ? "    family inet {\n"
                     : "    family inet6 {\n";
          any = true;
        }
        out += UnparseFilter(acl);
      }
      if (any) out += "    }\n";
    }
    out += "}\n";
  }

  bool has_protocols = config.ospf.has_value() ||
                       (config.bgp && !config.bgp->neighbors.empty());
  if (has_protocols) {
    out += "protocols {\n";
    if (config.ospf) {
      out += "    ospf {\n";
      if (config.ospf->reference_bandwidth_mbps != 100) {
        out += "        reference-bandwidth " +
               std::to_string(config.ospf->reference_bandwidth_mbps) + "m;\n";
      }
      for (const auto& redist : config.ospf->redistributions) {
        if (!redist.route_map.empty()) {
          out += "        export " + redist.route_map + ";\n";
          break;  // JunOS takes one export chain; first map wins here.
        }
      }
      // Group OSPF interfaces by area.
      std::map<std::uint32_t, std::vector<const ir::Interface*>> areas;
      for (const auto& iface : config.interfaces) {
        if (iface.ospf_enabled) {
          areas[iface.ospf_area.value_or(0)].push_back(&iface);
        }
      }
      for (const auto& [area, ifaces] : areas) {
        out += "        area " + util::Ipv4Address(area).ToString() + " {\n";
        for (const ir::Interface* iface : ifaces) {
          // The interfaces block emits unit-qualified names ("xe-0/0/0.0");
          // OSPF must reference the same logical unit or a re-parse sees a
          // phantom interface.
          std::string unit_name =
              iface->name.find('.') == std::string::npos ? iface->name + ".0"
                                                         : iface->name;
          out += "            interface " + unit_name + " {\n";
          if (iface->ospf_cost) {
            out += "                metric " +
                   std::to_string(*iface->ospf_cost) + ";\n";
          }
          if (iface->ospf_passive) out += "                passive;\n";
          out += "            }\n";
        }
        out += "        }\n";
      }
      out += "    }\n";
    }
    if (config.bgp && !config.bgp->neighbors.empty()) {
      out += "    bgp {\n";
      // Dialect extension (see DESIGN.md): JunOS expresses origination via
      // export policies over direct routes; to round-trip the IR's network
      // statements we emit them directly, and the parser reads them back.
      for (const auto& network : config.bgp->networks) {
        out += "        network " + network.ToString() + ";\n";
      }
      // One group per (internal/external, remote AS, reflector-client).
      struct GroupKey {
        bool internal;
        std::uint32_t remote_as;
        bool cluster;
        auto operator<=>(const GroupKey&) const = default;
      };
      std::map<GroupKey, std::vector<const ir::BgpNeighbor*>> groups;
      for (const auto& neighbor : config.bgp->neighbors) {
        groups[{neighbor.remote_as == config.bgp->asn, neighbor.remote_as,
                neighbor.route_reflector_client}]
            .push_back(&neighbor);
      }
      int group_index = 0;
      for (const auto& [key, neighbors] : groups) {
        out += "        group g" + std::to_string(group_index++) + " {\n";
        out += std::string("            type ") +
               (key.internal ? "internal" : "external") + ";\n";
        if (!key.internal) {
          out += "            peer-as " + std::to_string(key.remote_as) +
                 ";\n";
        }
        if (key.cluster && config.bgp->router_id) {
          out += "            cluster " + config.bgp->router_id->ToString() +
                 ";\n";
        } else if (key.cluster) {
          out += "            cluster 0.0.0.1;\n";
        }
        for (const ir::BgpNeighbor* neighbor : neighbors) {
          out += "            neighbor " + neighbor->ip.ToString() + " {\n";
          if (!neighbor->description.empty()) {
            out += "                description \"" + neighbor->description +
                   "\";\n";
          }
          if (!neighbor->import_policy.empty()) {
            out += "                import " + neighbor->import_policy +
                   ";\n";
          }
          if (!neighbor->export_policy.empty()) {
            out += "                export " + neighbor->export_policy +
                   ";\n";
          }
          out += "            }\n";
        }
        out += "        }\n";
      }
      out += "    }\n";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace campion::juniper
